//! Storage abstraction and deterministic storage-fault injection.
//!
//! Everything the service layer does to disk goes through the [`Vfs`]
//! trait: coarse, whole-operation primitives (append+fsync, atomic
//! replace, truncate, read, remove) rather than file handles, so a fault
//! adversary can interpose on exactly the operations whose failure modes
//! matter for the durability contract.
//!
//! Two implementations:
//!
//! * [`RealVfs`] — a passthrough to `std::fs` with the crash-ordering
//!   discipline the daemon has always used (tmp + fsync + rename +
//!   parent-dir fsync for atomic replaces, fsync after appends).
//! * [`FaultVfs`] — a hostile disk driven by a [`StorageFaultPlan`], the
//!   storage analogue of `simnet::faults::FaultPlan`: every decision is a
//!   **pure keyed hash** of `(seed, path, op, attempt)`, where `attempt`
//!   is the per-`(path, op)` call ordinal. Because each session's
//!   operation sequence on its own files is deterministic, the injected
//!   fault schedule is too — independent of thread count, scheduling, or
//!   how many other tenants share the daemon. That is what lets the
//!   torture harness certify byte-identity of surviving sessions under
//!   any fault schedule.
//!
//! Fault classes (see [`StorageFaultConfig`]):
//!
//! * **EIO** — the operation fails with an I/O error and no side effect.
//!   Transient: the retry's next draw is independent.
//! * **ENOSPC** — write-class operations fail with "no space"; also
//!   transient (space "frees up" on a later draw).
//! * **Torn write** — an append or tmp-file write persists only a prefix
//!   of the bytes, then fails. Recovery must truncate and re-append.
//! * **Fsync lie, then crash** — the scariest class: the operation
//!   *reports success* but the tail of the data never reaches disk, and
//!   the device then fails persistently (as after a hostile remount).
//!   Every later operation under the same parent directory returns EIO
//!   until the fault plan is discarded (a new daemon generation), so the
//!   lie is always followed by the "crash" that exposes it — exactly the
//!   only scenario in which a lying fsync is observable.
//! * **Slowdown** — the operation succeeds after an injected stall
//!   (exercises retry/backoff timing without changing any bytes).
//!
//! [`with_retries`] is the shared bounded-exponential-backoff retry loop
//! (reusing `simnet::faults::RetryPolicy`); callers that exhaust it get a
//! [`StorageFailure`] carrying the full per-attempt error chain for the
//! quarantine post-mortem.

use serde::{Deserialize, Serialize};
use simnet::faults::RetryPolicy;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The storage operations the service layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageOp {
    /// `create_dir_all`.
    CreateDir,
    /// Whole-file read.
    Read,
    /// Append bytes and fsync.
    Append,
    /// Truncate (or create) to a length and fsync.
    Truncate,
    /// File length query.
    Len,
    /// Atomic durable replace (tmp + fsync + rename + parent fsync).
    AtomicWrite,
    /// Remove a file.
    Remove,
    /// Remove a directory tree.
    RemoveDir,
    /// Barrier-time fsync of one staged file (group commit).
    SyncFile,
    /// Barrier-time rename finishing a staged atomic replace.
    Rename,
}

impl StorageOp {
    /// Stable lowercase name (used in post-mortems and fault keying).
    pub fn name(self) -> &'static str {
        match self {
            StorageOp::CreateDir => "create_dir",
            StorageOp::Read => "read",
            StorageOp::Append => "append",
            StorageOp::Truncate => "truncate",
            StorageOp::Len => "len",
            StorageOp::AtomicWrite => "atomic_write",
            StorageOp::Remove => "remove",
            StorageOp::RemoveDir => "remove_dir",
            StorageOp::SyncFile => "sync_file",
            StorageOp::Rename => "rename",
        }
    }

    /// Does this operation write (and therefore draw ENOSPC faults)?
    fn writes(self) -> bool {
        matches!(
            self,
            StorageOp::CreateDir | StorageOp::Append | StorageOp::Truncate | StorageOp::AtomicWrite
        )
    }
}

/// The storage layer every session and the daemon itself write through.
///
/// All methods are whole operations: they open, act, fsync, and close
/// internally, so implementations can fail (or lie) at any boundary
/// without leaking handles into the caller.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Create `path` and all missing ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Read the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Append `bytes` (creating the file if missing) and fsync.
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncate (creating if missing) to `len` bytes and fsync.
    fn truncate_sync(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Current length in bytes; `Ok(0)` for a missing file.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Atomically and durably replace `path` with `bytes`: write
    /// `<path>.tmp`, fsync, rename over `path`, fsync the parent
    /// directory.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Remove a directory and everything under it.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Does the path exist? (Metadata errors read as absent; existence
    /// probes are not fault-injected — only acting on the path is.)
    fn exists(&self, path: &Path) -> bool;
    /// Total faults injected so far (0 for non-injecting implementations).
    fn injected_faults(&self) -> u64 {
        0
    }

    // --- Deferred durability (group commit) -------------------------------
    //
    // The staged write path: `append_deferred` / `write_atomic_deferred`
    // put bytes on disk without waiting for durability, `sync_barrier`
    // makes every staged byte durable in one batched pass, and
    // `commit_atomic` then publishes staged replaces by renaming
    // `<path>.tmp` over `path`. The crash-order contract is the caller's:
    // never commit a replace whose content (or the data it vouches for)
    // has not passed a barrier. Defaults fall back to the eager methods,
    // which are strictly more durable, so wrapper implementations that
    // only override the eager surface stay correct.

    /// Stage an append (creating the file if missing) without fsync; a
    /// later [`Vfs::sync_barrier`] or [`Vfs::sync_file`] makes it
    /// durable. Default: eager [`Vfs::append_sync`].
    fn append_deferred(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.append_sync(path, bytes)
    }

    /// Stage an atomic replace: write `<path>.tmp` without fsync and
    /// without renaming. Commit order is `sync_barrier` (content
    /// durable) then [`Vfs::commit_atomic`] (rename). Default: eager
    /// [`Vfs::write_atomic`]; the matching [`Vfs::commit_atomic`]
    /// default is then a no-op because no staged tmp remains.
    fn write_atomic_deferred(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic(path, bytes)
    }

    /// Make one staged path durable (fsync; directories allowed). The
    /// barrier's per-path retry primitive. Default: open + `sync_all`.
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::SyncBarrier);
        std::fs::File::open(path)?.sync_all()
    }

    /// Finish a staged atomic replace by renaming `<path>.tmp` over
    /// `path`. Only call after the tmp content passed a barrier. No-op
    /// when no tmp is staged (the eager `write_atomic_deferred` default
    /// leaves none).
    fn commit_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_path(path);
        if self.exists(&tmp) {
            std::fs::rename(&tmp, path)?;
        }
        Ok(())
    }

    /// Make every staged write durable in one batched pass; one result
    /// per path, index-aligned. Default: per-path [`Vfs::sync_file`].
    fn sync_barrier(&self, paths: &[PathBuf]) -> Vec<io::Result<()>> {
        paths.iter().map(|p| self.sync_file(p)).collect()
    }
}

/// Passthrough to `std::fs` with the workspace durability discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(bytes)?;
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::Fsync);
        f.sync_all()
    }

    fn truncate_sync(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        f.set_len(len)?;
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::Fsync);
        f.sync_all()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            let _span = mwu_core::prof::span(mwu_core::prof::Phase::Fsync);
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::Fsync);
        sync_parent_dir(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn append_deferred(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn write_atomic_deferred(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(tmp_path(path))?;
        f.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::SyncBarrier);
        std::fs::File::open(path)?.sync_all()
    }

    fn commit_atomic(&self, path: &Path) -> io::Result<()> {
        std::fs::rename(tmp_path(path), path)?;
        // On Linux the next barrier's syncfs (and the daemon's final
        // flush) makes the rename durable; a lost rename replays one
        // slice byte-identically. Elsewhere the barrier is per-file, so
        // pay the directory fsync here.
        #[cfg(not(target_os = "linux"))]
        {
            let _span = mwu_core::prof::span(mwu_core::prof::Phase::SyncBarrier);
            sync_parent_dir(path)?;
        }
        Ok(())
    }

    fn sync_barrier(&self, paths: &[PathBuf]) -> Vec<io::Result<()>> {
        if paths.is_empty() {
            return Vec::new();
        }
        // One syncfs(2) covers every staged write on the filesystem in a
        // single batched pass — the O(1) group commit. When the syscall
        // is unavailable (non-Linux, exotic arch) or fails, fall back to
        // per-file fsyncs with parent-directory coalescing.
        {
            let _span = mwu_core::prof::span(mwu_core::prof::Phase::SyncBarrier);
            if syncfs_covering(&paths[0]).is_ok() {
                return paths.iter().map(|_| Ok(())).collect();
            }
        }
        let results: Vec<io::Result<()>> = paths.iter().map(|p| self.sync_file(p)).collect();
        let mut dirs: Vec<&Path> = paths
            .iter()
            .filter_map(|p| p.parent())
            .filter(|p| !p.as_os_str().is_empty())
            .collect();
        dirs.sort_unstable();
        dirs.dedup();
        for dir in dirs {
            let _span = mwu_core::prof::span(mwu_core::prof::Phase::SyncBarrier);
            let _ = std::fs::File::open(dir).and_then(|f| f.sync_all());
        }
        results
    }
}

/// `syncfs(2)` on the filesystem holding `path`: flushes every dirty
/// page and metadata entry of that filesystem to disk in one pass. The
/// workspace has no `libc` stub, so the syscall is issued directly;
/// other targets report `Unsupported` and the caller falls back to
/// per-file fsyncs.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)] // raw syscall: std has no syncfs and there is no libc stub
fn syncfs_covering(path: &Path) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    const SYS_SYNCFS: u64 = 306;
    let f = std::fs::File::open(path)?;
    let mut ret: i64 = SYS_SYNCFS as i64;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") ret,
            in("rdi") f.as_raw_fd() as u64,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(())
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn syncfs_covering(_path: &Path) -> io::Result<()> {
    Err(io::Error::from(io::ErrorKind::Unsupported))
}

/// `<path>.tmp` — the staging name every atomic replace goes through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> io::Result<()> {
    Ok(())
}

/// Per-class storage-fault probabilities (all default 0, like
/// `simnet::faults::FaultConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageFaultConfig {
    /// Probability an operation fails with EIO (no side effect).
    pub eio_rate: f64,
    /// Probability a write-class operation fails with ENOSPC.
    pub enospc_rate: f64,
    /// Probability an append / tmp write persists a prefix then fails.
    pub torn_rate: f64,
    /// Probability an append / atomic write lies (reports success,
    /// loses the tail) and the device then fails persistently.
    pub fsync_lie_rate: f64,
    /// Probability an operation is stalled before succeeding.
    pub slow_rate: f64,
    /// Stall length for slow operations, microseconds.
    pub slow_us: u64,
}

impl Default for StorageFaultConfig {
    fn default() -> Self {
        Self {
            eio_rate: 0.0,
            enospc_rate: 0.0,
            torn_rate: 0.0,
            fsync_lie_rate: 0.0,
            slow_rate: 0.0,
            slow_us: 50,
        }
    }
}

impl StorageFaultConfig {
    /// A transient-EIO-only adversary.
    pub fn eio(rate: f64) -> Self {
        Self {
            eio_rate: rate,
            ..Self::default()
        }
    }

    /// A mixed adversary: EIO at `rate`, ENOSPC and torn writes at half,
    /// slowdowns at half, fsync lies at a tenth.
    pub fn mixed(rate: f64) -> Self {
        Self {
            eio_rate: rate,
            enospc_rate: rate / 2.0,
            torn_rate: rate / 2.0,
            fsync_lie_rate: rate / 10.0,
            slow_rate: rate / 2.0,
            ..Self::default()
        }
    }

    /// Torn-write-heavy adversary (crash-ordering stress).
    pub fn torn(rate: f64) -> Self {
        Self {
            torn_rate: rate,
            ..Self::default()
        }
    }

    /// Fsync-lie-heavy adversary (durability stress).
    pub fn lies(rate: f64) -> Self {
        Self {
            fsync_lie_rate: rate,
            ..Self::default()
        }
    }

    /// Are all rates zero?
    pub fn is_quiescent(&self) -> bool {
        self.eio_rate == 0.0
            && self.enospc_rate == 0.0
            && self.torn_rate == 0.0
            && self.fsync_lie_rate == 0.0
            && self.slow_rate == 0.0
    }

    fn validate(&self) {
        for (name, r) in [
            ("eio_rate", self.eio_rate),
            ("enospc_rate", self.enospc_rate),
            ("torn_rate", self.torn_rate),
            ("fsync_lie_rate", self.fsync_lie_rate),
            ("slow_rate", self.slow_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} {r} outside [0, 1]");
        }
    }
}

/// What the plan decided for one storage operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageFault {
    /// Perform normally.
    None,
    /// Fail with EIO, no side effect.
    Eio,
    /// Fail with ENOSPC, no side effect.
    Enospc,
    /// Persist this fraction of the bytes, then fail with EIO.
    Torn(f64),
    /// Report success, persist this fraction, then fail persistently.
    FsyncLie(f64),
    /// Stall this many microseconds, then perform normally.
    Slow(u64),
}

/// Label-space tags keeping the per-class decision streams disjoint
/// (same construction as `simnet::faults`).
const TAG_EIO: u64 = 0xD150_0001;
const TAG_ENOSPC: u64 = 0xD150_0002;
const TAG_TORN: u64 = 0xD150_0003;
const TAG_TORN_LEN: u64 = 0xD150_0004;
const TAG_LIE: u64 = 0xD150_0005;
const TAG_LIE_LEN: u64 = 0xD150_0006;
const TAG_SLOW: u64 = 0xD150_0007;

/// A deterministic storage-fault schedule: seed + rates, no mutable
/// state. Every decision is a pure function of
/// `(seed, path, op, attempt)`, so the plan can be shared across threads
/// and re-queried freely without perturbing the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageFaultPlan {
    seed: u64,
    config: StorageFaultConfig,
}

impl StorageFaultPlan {
    /// Plan over `config`, keyed by `seed`.
    ///
    /// # Panics
    /// Panics on rates outside `[0, 1]`.
    pub fn new(seed: u64, config: StorageFaultConfig) -> Self {
        config.validate();
        Self { seed, config }
    }

    /// The fault-free plan.
    pub fn quiescent() -> Self {
        Self::new(0, StorageFaultConfig::default())
    }

    /// The configuration in force.
    pub fn config(&self) -> &StorageFaultConfig {
        &self.config
    }

    /// The seed in force.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn hash(&self, tag: u64, path_hash: u64, op: StorageOp, attempt: u32) -> u64 {
        let mut acc = mix64(self.seed ^ 0x5106_F417_B1A5_D15C);
        for l in [tag, path_hash, op as u64, attempt as u64] {
            acc = mix64(acc ^ l.rotate_left(17));
        }
        mix64(acc)
    }

    fn uniform(&self, tag: u64, path_hash: u64, op: StorageOp, attempt: u32) -> f64 {
        (self.hash(tag, path_hash, op, attempt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bernoulli(&self, p: f64, tag: u64, path_hash: u64, op: StorageOp, attempt: u32) -> bool {
        p > 0.0 && self.uniform(tag, path_hash, op, attempt) < p
    }

    /// Fraction in `[0.25, 1)` of a torn/lied write that reaches disk.
    fn keep_fraction(&self, tag: u64, path_hash: u64, op: StorageOp, attempt: u32) -> f64 {
        0.25 + 0.75 * self.uniform(tag, path_hash, op, attempt)
    }

    /// The fate of call number `attempt` of `op` on `path`. Classes are
    /// drawn in severity order (lie, torn, EIO, ENOSPC, slow); classes
    /// that do not apply to `op` fall through to the next.
    pub fn decide(&self, path: &Path, op: StorageOp, attempt: u32) -> StorageFault {
        let ph = hash_path(path);
        let lies_apply = matches!(op, StorageOp::Append | StorageOp::AtomicWrite);
        if lies_apply && self.bernoulli(self.config.fsync_lie_rate, TAG_LIE, ph, op, attempt) {
            return StorageFault::FsyncLie(self.keep_fraction(TAG_LIE_LEN, ph, op, attempt));
        }
        if lies_apply && self.bernoulli(self.config.torn_rate, TAG_TORN, ph, op, attempt) {
            return StorageFault::Torn(self.keep_fraction(TAG_TORN_LEN, ph, op, attempt));
        }
        if self.bernoulli(self.config.eio_rate, TAG_EIO, ph, op, attempt) {
            return StorageFault::Eio;
        }
        if op.writes() && self.bernoulli(self.config.enospc_rate, TAG_ENOSPC, ph, op, attempt) {
            return StorageFault::Enospc;
        }
        if self.bernoulli(self.config.slow_rate, TAG_SLOW, ph, op, attempt) {
            return StorageFault::Slow(self.config.slow_us);
        }
        StorageFault::None
    }
}

/// Fold a path's bytes into one u64 label with the SplitMix64 chain.
fn hash_path(path: &Path) -> u64 {
    let bytes = path.to_string_lossy();
    let bytes = bytes.as_bytes();
    let mut acc = mix64(bytes.len() as u64 ^ 0x9E37_79B9);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = mix64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// SplitMix64 finalizer (same mixer as `simnet::faults`).
#[inline]
fn mix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A hostile disk: [`RealVfs`] behind a [`StorageFaultPlan`].
///
/// The only mutable state is bookkeeping that is itself deterministic
/// given the callers' deterministic operation sequences: a per-
/// `(path, op)` call counter (the `attempt` label, so retries redraw
/// independently) and the set of directories killed by an fsync lie.
/// Each session touches only paths under its own directory, so the
/// schedule one session experiences is independent of every other
/// session and of thread interleaving.
#[derive(Debug)]
pub struct FaultVfs {
    plan: StorageFaultPlan,
    inner: RealVfs,
    /// Schedule paths relative to this root (see [`FaultVfs::rooted`]).
    root: Option<PathBuf>,
    calls: Mutex<HashMap<(PathBuf, StorageOp), u32>>,
    /// Directories whose subtree fails persistently (post-fsync-lie).
    dead: Mutex<Vec<PathBuf>>,
    /// Paths whose *staged* write drew an fsync lie: the stage call
    /// already lost the tail, and the next barrier sync / commit on the
    /// path reports success then kills the directory — a lying fsync
    /// observed mid-barrier.
    lied: Mutex<Vec<PathBuf>>,
    injected: AtomicU64,
}

impl FaultVfs {
    /// A hostile disk driven by `plan`, keyed by absolute paths.
    pub fn new(plan: StorageFaultPlan) -> Self {
        Self {
            plan,
            inner: RealVfs,
            root: None,
            calls: Mutex::new(HashMap::new()),
            dead: Mutex::new(Vec::new()),
            lied: Mutex::new(Vec::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// A hostile disk whose schedule is keyed by paths *relative to
    /// `root`* ("tenants/acme/job-1/trace.jsonl" instead of the absolute
    /// path). This makes the fault schedule independent of where the
    /// work directory happens to live — the property that lets the
    /// torture sweep and the fault tests pin exact quarantine sets
    /// across machines and process ids.
    pub fn rooted(plan: StorageFaultPlan, root: impl Into<PathBuf>) -> Self {
        let mut vfs = Self::new(plan);
        vfs.root = Some(root.into());
        vfs
    }

    /// The plan in force.
    pub fn plan(&self) -> &StorageFaultPlan {
        &self.plan
    }

    fn next_attempt(&self, path: &Path, op: StorageOp) -> u32 {
        let mut calls = self.calls.lock().unwrap();
        let n = calls.entry((path.to_path_buf(), op)).or_insert(0);
        let attempt = *n;
        *n = n.wrapping_add(1);
        attempt
    }

    /// Persistent failure for paths under a lied-to directory.
    fn guard_dead(&self, path: &Path) -> io::Result<()> {
        let dead = self.dead.lock().unwrap();
        if dead.iter().any(|d| path.starts_with(d)) {
            return Err(io::Error::other(
                "injected: device failed after lost write (fsync lie)",
            ));
        }
        Ok(())
    }

    fn mark_dead(&self, path: &Path) {
        let dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let mut dead = self.dead.lock().unwrap();
        if !dead.contains(&dir) {
            dead.push(dir);
        }
    }

    fn count(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// The path the schedule sees: relative to `root` when rooted.
    fn plan_path<'a>(&self, path: &'a Path) -> &'a Path {
        match &self.root {
            Some(root) => path.strip_prefix(root).unwrap_or(path),
            None => path,
        }
    }

    fn decide(&self, path: &Path, op: StorageOp) -> io::Result<StorageFault> {
        self.guard_dead(path)?;
        let attempt = self.next_attempt(path, op);
        let fault = self.plan.decide(self.plan_path(path), op, attempt);
        match fault {
            StorageFault::None => {}
            StorageFault::Slow(us) => {
                self.count();
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
            _ => self.count(),
        }
        Ok(fault)
    }

    fn keep_len(bytes: &[u8], fraction: f64) -> usize {
        ((bytes.len() as f64 * fraction) as usize).min(bytes.len())
    }

    fn record_lie(&self, path: &Path) {
        self.lied.lock().unwrap().push(path.to_path_buf());
    }

    /// Consume a pending staged-write lie on `path`, if any.
    fn take_lie(&self, path: &Path) -> bool {
        let mut lied = self.lied.lock().unwrap();
        match lied.iter().position(|p| p == path) {
            Some(i) => {
                lied.remove(i);
                true
            }
            None => false,
        }
    }
}

fn eio(what: &str) -> io::Error {
    io::Error::other(format!("injected EIO: {what}"))
}

fn enospc(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        format!("injected ENOSPC: {what}"),
    )
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.decide(path, StorageOp::CreateDir)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("create_dir"))
            }
            StorageFault::Enospc => Err(enospc("create_dir")),
            StorageFault::None | StorageFault::Slow(_) => self.inner.create_dir_all(path),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide(path, StorageOp::Read)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("read"))
            }
            StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_) => {
                self.inner.read(path)
            }
        }
    }

    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(path, StorageOp::Append)? {
            StorageFault::Eio => Err(eio("append")),
            StorageFault::Enospc => Err(enospc("append")),
            StorageFault::Torn(keep) => {
                // A prefix reaches disk, then the write errors: the torn
                // tail the caller must truncate away before retrying.
                let _ = self
                    .inner
                    .append_sync(path, &bytes[..Self::keep_len(bytes, keep)]);
                Err(eio("append torn mid-write"))
            }
            StorageFault::FsyncLie(keep) => {
                // Success is reported, but the tail never hit the platter
                // — and the device dies under the caller immediately
                // after, so the lie is observed the only way it can be:
                // as data missing after a crash.
                let _ = self
                    .inner
                    .append_sync(path, &bytes[..Self::keep_len(bytes, keep)]);
                self.mark_dead(path);
                Ok(())
            }
            StorageFault::None | StorageFault::Slow(_) => self.inner.append_sync(path, bytes),
        }
    }

    fn truncate_sync(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.decide(path, StorageOp::Truncate)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("truncate"))
            }
            StorageFault::Enospc => Err(enospc("truncate")),
            StorageFault::None | StorageFault::Slow(_) => self.inner.truncate_sync(path, len),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        match self.decide(path, StorageOp::Len)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("len"))
            }
            StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_) => {
                self.inner.file_len(path)
            }
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(path, StorageOp::AtomicWrite)? {
            StorageFault::Eio => Err(eio("atomic write")),
            StorageFault::Enospc => Err(enospc("atomic write")),
            StorageFault::Torn(keep) => {
                // The crash hits mid-tmp-write: an orphaned partial
                // `<path>.tmp` is left behind and the final file is
                // untouched (the startup sweep's job to clean).
                let torn = &bytes[..Self::keep_len(bytes, keep)];
                let _ = std::fs::write(tmp_path(path), torn);
                Err(eio("atomic write torn in tmp file"))
            }
            StorageFault::FsyncLie(_) => {
                // The rename "succeeded" but the directory entry was
                // rolled back by the crash: the old content survives and
                // the device dies under the caller.
                self.mark_dead(path);
                Ok(())
            }
            StorageFault::None | StorageFault::Slow(_) => self.inner.write_atomic(path, bytes),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.decide(path, StorageOp::Remove)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("remove"))
            }
            StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_) => {
                self.inner.remove_file(path)
            }
        }
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.decide(path, StorageOp::RemoveDir)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("remove_dir"))
            }
            StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_) => {
                self.inner.remove_dir_all(path)
            }
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn append_deferred(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(path, StorageOp::Append)? {
            StorageFault::Eio => Err(eio("append")),
            StorageFault::Enospc => Err(enospc("append")),
            StorageFault::Torn(keep) => {
                let _ = self
                    .inner
                    .append_deferred(path, &bytes[..Self::keep_len(bytes, keep)]);
                Err(eio("append torn mid-write"))
            }
            StorageFault::FsyncLie(keep) => {
                // The stage call loses the tail silently; the lie
                // surfaces at the barrier (see [`Vfs::sync_barrier`]),
                // where the sync "succeeds" and the device then dies.
                let _ = self
                    .inner
                    .append_deferred(path, &bytes[..Self::keep_len(bytes, keep)]);
                self.record_lie(path);
                Ok(())
            }
            StorageFault::None | StorageFault::Slow(_) => self.inner.append_deferred(path, bytes),
        }
    }

    fn write_atomic_deferred(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(path, StorageOp::AtomicWrite)? {
            StorageFault::Eio => Err(eio("atomic write")),
            StorageFault::Enospc => Err(enospc("atomic write")),
            StorageFault::Torn(keep) => {
                let torn = &bytes[..Self::keep_len(bytes, keep)];
                let _ = std::fs::write(tmp_path(path), torn);
                Err(eio("atomic write torn in tmp file"))
            }
            StorageFault::FsyncLie(_) => {
                // The staged tmp is written, but the commit-time rename
                // will "succeed" without landing: old content survives
                // and the device dies (see [`Vfs::commit_atomic`]).
                let _ = self.inner.write_atomic_deferred(path, bytes);
                self.record_lie(path);
                Ok(())
            }
            StorageFault::None | StorageFault::Slow(_) => {
                self.inner.write_atomic_deferred(path, bytes)
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if self.take_lie(path) {
            self.mark_dead(path);
            return Ok(());
        }
        match self.decide(path, StorageOp::SyncFile)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("sync_file"))
            }
            StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_) => {
                self.inner.sync_file(path)
            }
        }
    }

    fn commit_atomic(&self, path: &Path) -> io::Result<()> {
        if self.take_lie(path) {
            // The rename "succeeded" but never landed: the old content
            // survives under a now-dead device.
            self.mark_dead(path);
            return Ok(());
        }
        match self.decide(path, StorageOp::Rename)? {
            StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_) => {
                Err(eio("rename"))
            }
            StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_) => {
                self.inner.commit_atomic(path)
            }
        }
    }

    fn sync_barrier(&self, paths: &[PathBuf]) -> Vec<io::Result<()>> {
        // Draw per-path fates first (keeps the schedule keyed on paths,
        // independent of how the daemon batches them), then one batched
        // inner pass over the clean survivors.
        let mut results: Vec<io::Result<()>> = Vec::with_capacity(paths.len());
        let mut clean = Vec::new();
        let mut clean_idx = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            if self.take_lie(p) {
                self.mark_dead(p);
                results.push(Ok(()));
                continue;
            }
            match self.decide(p, StorageOp::SyncFile) {
                Err(e) => results.push(Err(e)),
                Ok(StorageFault::Eio | StorageFault::Torn(_) | StorageFault::FsyncLie(_)) => {
                    results.push(Err(eio("sync_barrier")))
                }
                Ok(StorageFault::Enospc | StorageFault::None | StorageFault::Slow(_)) => {
                    results.push(Ok(()));
                    clean_idx.push(i);
                    clean.push(p.clone());
                }
            }
        }
        for (k, r) in self.inner.sync_barrier(&clean).into_iter().enumerate() {
            if r.is_err() {
                results[clean_idx[k]] = r;
            }
        }
        results
    }
}

/// A storage operation that kept failing through every retry: the raw
/// material of a quarantine post-mortem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageFailure {
    /// Which operation failed.
    pub op: StorageOp,
    /// The path it failed on.
    pub path: String,
    /// Attempts made (original + retries).
    pub attempts: u32,
    /// Per-attempt error messages, first to last.
    pub errors: Vec<String>,
}

impl fmt::Display for StorageFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {:?} failed after {} attempts (last: {})",
            self.op.name(),
            self.path,
            self.attempts,
            self.errors.last().map(String::as_str).unwrap_or("?"),
        )
    }
}

impl std::error::Error for StorageFailure {}

/// Run `f` under `policy`: bounded exponential backoff between attempts
/// (`base_delay · 2^(a-1)` milliseconds, capped at 50 ms so hostile-disk
/// tests stay fast), `retries` incremented once per retry performed.
/// Exhaustion returns the full error chain as a [`StorageFailure`].
pub fn with_retries<T>(
    policy: &RetryPolicy,
    op: StorageOp,
    path: &Path,
    retries: &mut u64,
    mut f: impl FnMut() -> io::Result<T>,
) -> Result<T, StorageFailure> {
    let attempts = policy.max_attempts.saturating_add(1);
    let mut errors = Vec::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            *retries += 1;
            let ms = policy.backoff_rounds(attempt, 0.0).min(50) as u64;
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => errors.push(format!("attempt {}: {e}", attempt + 1)),
        }
    }
    Err(StorageFailure {
        op,
        path: path.display().to_string(),
        attempts,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mwrd-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quiescent_plan_injects_nothing() {
        let p = StorageFaultPlan::quiescent();
        for attempt in 0..100 {
            for op in [
                StorageOp::Read,
                StorageOp::Append,
                StorageOp::AtomicWrite,
                StorageOp::Remove,
            ] {
                assert_eq!(
                    p.decide(Path::new("a/b/c.json"), op, attempt),
                    StorageFault::None
                );
            }
        }
    }

    #[test]
    fn decisions_are_pure_and_deterministic() {
        let a = StorageFaultPlan::new(7, StorageFaultConfig::mixed(0.4));
        let b = StorageFaultPlan::new(7, StorageFaultConfig::mixed(0.4));
        for attempt in 0..200 {
            assert_eq!(
                a.decide(Path::new("t/x/trace.jsonl"), StorageOp::Append, attempt),
                b.decide(Path::new("t/x/trace.jsonl"), StorageOp::Append, attempt),
            );
        }
        let c = StorageFaultPlan::new(8, StorageFaultConfig::mixed(0.4));
        let fates_a: Vec<_> = (0..200)
            .map(|n| a.decide(Path::new("p"), StorageOp::Append, n))
            .collect();
        let fates_c: Vec<_> = (0..200)
            .map(|n| c.decide(Path::new("p"), StorageOp::Append, n))
            .collect();
        assert_ne!(fates_a, fates_c, "different seeds must differ");
    }

    #[test]
    fn paths_decorrelate_decisions() {
        let p = StorageFaultPlan::new(3, StorageFaultConfig::eio(0.5));
        let a: Vec<_> = (0..200)
            .map(|n| p.decide(Path::new("tenants/a/j/trace.jsonl"), StorageOp::Append, n))
            .collect();
        let b: Vec<_> = (0..200)
            .map(|n| p.decide(Path::new("tenants/b/j/trace.jsonl"), StorageOp::Append, n))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn eio_rate_is_roughly_honored() {
        let p = StorageFaultPlan::new(11, StorageFaultConfig::eio(0.25));
        let hits = (0..20_000)
            .filter(|&n| p.decide(Path::new("x"), StorageOp::Read, n) == StorageFault::Eio)
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed EIO rate {rate}");
    }

    #[test]
    fn enospc_only_hits_write_ops() {
        let cfg = StorageFaultConfig {
            enospc_rate: 1.0,
            ..StorageFaultConfig::default()
        };
        let p = StorageFaultPlan::new(1, cfg);
        assert_eq!(
            p.decide(Path::new("x"), StorageOp::Read, 0),
            StorageFault::None
        );
        assert_eq!(
            p.decide(Path::new("x"), StorageOp::Append, 0),
            StorageFault::Enospc
        );
    }

    #[test]
    fn torn_append_persists_a_prefix_then_errors() {
        let dir = tmp_dir("torn");
        let path = dir.join("trace.jsonl");
        let vfs = FaultVfs::new(StorageFaultPlan::new(2, StorageFaultConfig::torn(1.0)));
        let err = vfs.append_sync(&path, b"0123456789abcdef").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < 16, "prefix only");
        assert!(b"0123456789abcdef".starts_with(&on_disk[..]));
        assert!(vfs.injected_faults() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_lie_reports_success_then_kills_the_directory() {
        let dir = tmp_dir("lie");
        let path = dir.join("trace.jsonl");
        let vfs = FaultVfs::new(StorageFaultPlan::new(5, StorageFaultConfig::lies(1.0)));
        vfs.append_sync(&path, b"0123456789abcdef").unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 16, "the lie must lose the tail");
        // Every subsequent operation under the session directory fails
        // persistently, so the lie is always followed by the "crash".
        for _ in 0..5 {
            assert!(vfs.append_sync(&path, b"more").is_err());
            assert!(vfs.write_atomic(&dir.join("session.json"), b"{}").is_err());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retries_redraw_attempts_independently() {
        // At 50% EIO, four attempts virtually always find a success.
        let dir = tmp_dir("retry");
        let path = dir.join("doc.json");
        let vfs = FaultVfs::new(StorageFaultPlan::new(13, StorageFaultConfig::eio(0.5)));
        let policy = RetryPolicy {
            max_attempts: 16,
            base_delay: 1,
        };
        let mut retries = 0;
        for i in 0..20 {
            with_retries(&policy, StorageOp::AtomicWrite, &path, &mut retries, || {
                vfs.write_atomic(&path, format!("doc {i}").as_bytes())
            })
            .unwrap();
        }
        assert!(retries > 0, "a 50% adversary must force some retries");
        assert_eq!(std::fs::read(&path).unwrap(), b"doc 19");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn with_retries_reports_full_error_chain_on_exhaustion() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay: 1,
        };
        let mut retries = 0;
        let mut n = 0;
        let failure = with_retries(
            &policy,
            StorageOp::Append,
            Path::new("t/x/trace.jsonl"),
            &mut retries,
            || -> io::Result<()> {
                n += 1;
                Err(io::Error::other(format!("boom {n}")))
            },
        )
        .unwrap_err();
        assert_eq!(failure.attempts, 3);
        assert_eq!(retries, 2);
        assert_eq!(failure.errors.len(), 3);
        assert!(failure.errors[2].contains("boom 3"));
        assert!(failure.to_string().contains("append"));
    }

    #[test]
    fn real_vfs_write_atomic_replaces_and_cleans_tmp() {
        let dir = tmp_dir("atomic");
        let p = dir.join("doc.json");
        RealVfs.write_atomic(&p, b"one").unwrap();
        RealVfs.write_atomic(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        assert!(!tmp_path(&p).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn real_vfs_truncate_creates_and_file_len_tolerates_missing() {
        let dir = tmp_dir("trunc");
        let p = dir.join("trace.jsonl");
        assert_eq!(RealVfs.file_len(&p).unwrap(), 0, "missing file reads 0");
        RealVfs.truncate_sync(&p, 0).unwrap();
        RealVfs.append_sync(&p, b"abcdef").unwrap();
        assert_eq!(RealVfs.file_len(&p).unwrap(), 6);
        RealVfs.truncate_sync(&p, 2).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"ab");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic]
    fn out_of_range_rate_rejected() {
        let _ = StorageFaultPlan::new(0, StorageFaultConfig::eio(1.5));
    }

    /// Two rooted adversaries over *different* work directories draw the
    /// same schedule for the same relative path — the invariance that
    /// makes quarantine sets reproducible across machines and pids.
    #[test]
    fn rooted_schedule_ignores_where_the_root_lives() {
        let plan = || StorageFaultPlan::new(99, StorageFaultConfig::mixed(0.3));
        let a = FaultVfs::rooted(plan(), "/mnt/alpha/work");
        let b = FaultVfs::rooted(plan(), "/tmp/very/different/place-12345");
        for n in 0..200 {
            let pa = format!("/mnt/alpha/work/tenants/t/j/trace-{}.jsonl", n % 7);
            let pb = format!(
                "/tmp/very/different/place-12345/tenants/t/j/trace-{}.jsonl",
                n % 7
            );
            let fa = plan_decision(&a, Path::new(&pa), StorageOp::Append);
            let fb = plan_decision(&b, Path::new(&pb), StorageOp::Append);
            assert_eq!(fa, fb, "draw {n} diverged");
        }
    }

    /// Draw through the full per-(path,op) attempt bookkeeping.
    fn plan_decision(vfs: &FaultVfs, path: &Path, op: StorageOp) -> StorageFault {
        let attempt = vfs.next_attempt(path, op);
        vfs.plan.decide(vfs.plan_path(path), op, attempt)
    }

    #[test]
    fn deferred_append_then_barrier_lands_every_byte() {
        let dir = tmp_dir("defer-append");
        let p = dir.join("trace.jsonl");
        RealVfs.append_deferred(&p, b"one\n").unwrap();
        RealVfs.append_deferred(&p, b"two\n").unwrap();
        for r in RealVfs.sync_barrier(std::slice::from_ref(&p)) {
            r.unwrap();
        }
        assert_eq!(std::fs::read(&p).unwrap(), b"one\ntwo\n");
        assert!(RealVfs.sync_barrier(&[]).is_empty(), "empty barrier no-ops");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_atomic_stages_then_commit_publishes() {
        let dir = tmp_dir("defer-atomic");
        let p = dir.join("session.json");
        RealVfs.write_atomic(&p, b"old").unwrap();
        RealVfs.write_atomic_deferred(&p, b"new").unwrap();
        // Staged, not published: readers still see the old document.
        assert_eq!(std::fs::read(&p).unwrap(), b"old");
        assert_eq!(std::fs::read(tmp_path(&p)).unwrap(), b"new");
        for r in RealVfs.sync_barrier(&[tmp_path(&p)]) {
            r.unwrap();
        }
        RealVfs.commit_atomic(&p).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"new");
        assert!(!tmp_path(&p).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The trait defaults route the deferred surface through the eager
    /// methods, so a wrapper that only overrides the eager nine stages
    /// nothing and `commit_atomic` finds no tmp to rename.
    #[test]
    fn eager_defaults_keep_wrapper_vfs_correct() {
        #[derive(Debug)]
        struct EagerOnly;
        impl Vfs for EagerOnly {
            fn create_dir_all(&self, p: &Path) -> io::Result<()> {
                RealVfs.create_dir_all(p)
            }
            fn read(&self, p: &Path) -> io::Result<Vec<u8>> {
                RealVfs.read(p)
            }
            fn append_sync(&self, p: &Path, b: &[u8]) -> io::Result<()> {
                RealVfs.append_sync(p, b)
            }
            fn truncate_sync(&self, p: &Path, n: u64) -> io::Result<()> {
                RealVfs.truncate_sync(p, n)
            }
            fn file_len(&self, p: &Path) -> io::Result<u64> {
                RealVfs.file_len(p)
            }
            fn write_atomic(&self, p: &Path, b: &[u8]) -> io::Result<()> {
                RealVfs.write_atomic(p, b)
            }
            fn remove_file(&self, p: &Path) -> io::Result<()> {
                RealVfs.remove_file(p)
            }
            fn remove_dir_all(&self, p: &Path) -> io::Result<()> {
                RealVfs.remove_dir_all(p)
            }
            fn exists(&self, p: &Path) -> bool {
                RealVfs.exists(p)
            }
        }
        let dir = tmp_dir("eager-default");
        let p = dir.join("session.json");
        EagerOnly.write_atomic_deferred(&p, b"doc").unwrap();
        // Eager fallback already renamed: the doc is live, no tmp staged.
        assert_eq!(std::fs::read(&p).unwrap(), b"doc");
        assert!(!tmp_path(&p).exists());
        EagerOnly.commit_atomic(&p).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"doc");
        EagerOnly.append_deferred(&p, b"+").unwrap();
        for r in EagerOnly.sync_barrier(std::slice::from_ref(&p)) {
            r.unwrap();
        }
        assert_eq!(std::fs::read(&p).unwrap(), b"doc+");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A lying fsync drawn at stage time surfaces at the barrier: the
    /// sync *reports success* while the tail never landed, and the
    /// device then dies persistently — the staged replace must not be
    /// published by `commit_atomic`.
    #[test]
    fn lie_staged_at_append_fires_at_the_barrier() {
        let dir = tmp_dir("lie-barrier");
        let trace = dir.join("trace.jsonl");
        let vfs = FaultVfs::new(StorageFaultPlan::new(5, StorageFaultConfig::lies(1.0)));
        vfs.append_deferred(&trace, b"0123456789abcdef").unwrap();
        let results = vfs.sync_barrier(std::slice::from_ref(&trace));
        assert!(results[0].is_ok(), "the lie reports success");
        let on_disk = std::fs::read(&trace).unwrap();
        assert!(on_disk.len() < 16, "the lie must lose the tail");
        // The device is now dead: the epoch's renames and every later
        // operation under the directory fail persistently.
        assert!(vfs.append_sync(&trace, b"more").is_err());
        assert!(vfs.write_atomic(&dir.join("session.json"), b"{}").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lie_staged_at_atomic_write_skips_the_rename() {
        let dir = tmp_dir("lie-rename");
        let doc = dir.join("session.json");
        let vfs = FaultVfs::new(StorageFaultPlan::new(5, StorageFaultConfig::lies(1.0)));
        RealVfs.write_atomic(&doc, b"old").unwrap();
        vfs.write_atomic_deferred(&doc, b"new").unwrap();
        // Lie consumed at commit: reports success, publishes nothing.
        vfs.commit_atomic(&doc).unwrap();
        assert_eq!(std::fs::read(&doc).unwrap(), b"old");
        assert!(vfs.append_sync(&dir.join("trace.jsonl"), b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite: barrier-time syncs must book under the `SyncBarrier`
    /// profiler phase, not `Fsync`, so the loadgen matrix can split
    /// "per-write fsync" from "batched barrier" wall time. Runs under the
    /// deterministic counting clock; per-thread rows isolate this test
    /// from concurrent tests in the same binary.
    #[test]
    fn barrier_time_books_under_sync_barrier_phase() {
        use mwu_core::prof;
        let dir = tmp_dir("prof-phase");
        let p = dir.join("trace.jsonl");
        prof::set_counting_clock(1_000);
        prof::set_enabled(true);
        RealVfs.append_deferred(&p, b"staged\n").unwrap();
        for r in RealVfs.sync_barrier(std::slice::from_ref(&p)) {
            r.unwrap();
        }
        RealVfs.append_sync(&p, b"eager\n").unwrap();
        prof::set_enabled(false);
        let report = prof::snapshot();
        let me = std::thread::current().name().unwrap_or("main").to_string();
        let mine = report
            .per_thread
            .iter()
            .find(|t| t.thread == me)
            .expect("this thread recorded spans");
        let total = |phase: &str| {
            mine.spans
                .iter()
                .filter(|s| s.phase == phase)
                .map(|s| (s.count, s.total_ns))
                .next()
                .unwrap_or((0, 0))
        };
        let (barrier_n, barrier_ns) = total("sync_barrier");
        let (fsync_n, fsync_ns) = total("fsync");
        assert!(barrier_n >= 1, "barrier sync must record a span");
        assert!(barrier_ns > 0, "counting clock must advance inside it");
        assert!(fsync_n >= 1, "eager append still books under fsync");
        assert!(fsync_ns > 0);
        prof::set_monotonic_clock();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
