//! The JSONL job protocol `mwrepaird` accepts.
//!
//! One JSON document per line, externally tagged by line kind:
//!
//! ```text
//! {"Job":{"id":"j-1","tenant":"acme","scenario":{"Synthetic":{...}},
//!         "algorithm":"Slate","seed":7,"max_iterations":400}}
//! {"Budget":{"tenant":"acme","max_evals":100000,"max_ms":null}}
//! ```
//!
//! Blank lines are skipped. Parsing is strict and total: every rejection
//! carries the 1-based line number and a precise reason, duplicate job ids
//! and duplicate tenant budgets are errors, over-long and over-nested lines
//! are rejected before the JSON parser ever sees them (the vendored parser
//! recurses per nesting level, so [`MAX_NESTING_DEPTH`] is what makes
//! arbitrary byte noise safe), and no input — malformed, truncated, or
//! random bytes — panics the parser. `tests/tests/service.rs` fuzzes
//! exactly that claim.

use apr_sim::{BugScenario, ScenarioKind};
use mwrepair::VariantChoice;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Longest accepted protocol line, in bytes.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Deepest accepted JSON nesting. Valid protocol lines nest 4 levels; the
/// cap exists so crafted `[[[[…` noise cannot blow the parser's stack.
pub const MAX_NESTING_DEPTH: usize = 16;

/// Longest accepted job id / tenant name.
const MAX_NAME_LEN: usize = 100;

/// The bug scenario a job runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// A named scenario from the paper catalog
    /// ([`BugScenario::catalog_all`]).
    Catalog {
        /// Catalog name, e.g. `"gzip-2009-08-16"`.
        name: String,
    },
    /// A synthetic scenario built from explicit knobs
    /// ([`BugScenario::custom`]).
    Synthetic {
        /// Scenario name (also part of the pool-cache identity).
        name: String,
        /// Option count `k` (bandit arms are 1..=k compositions).
        options: usize,
        /// Where the repair-density optimum falls.
        x_star: usize,
        /// Program statements.
        statements: usize,
        /// Test-suite size.
        tests: usize,
        /// Fraction of compositions that repair.
        repair_rate: f64,
        /// World seed fixing the mutation space.
        world_seed: u64,
        /// Precompute-pool target size (default: `options`).
        pool_size: Option<usize>,
    },
}

impl ScenarioSpec {
    /// Cache key: two jobs with equal keys share one scenario + pool.
    pub fn cache_key(&self) -> String {
        serde_json::to_string(self).expect("scenario spec serializes")
    }

    /// Validate without building (catalog existence, custom-knob ranges).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ScenarioSpec::Catalog { name } => {
                if BugScenario::by_name(name).is_none() {
                    return Err(format!("unknown catalog scenario {name:?}"));
                }
            }
            ScenarioSpec::Synthetic {
                name,
                options,
                x_star,
                statements,
                tests,
                repair_rate,
                pool_size,
                ..
            } => {
                if name.is_empty() {
                    return Err("synthetic scenario name must be non-empty".into());
                }
                if *options < 2 {
                    return Err(format!("options must be >= 2, got {options}"));
                }
                if *x_star < 1 || x_star > options {
                    return Err(format!("x_star must be in 1..={options}, got {x_star}"));
                }
                if *statements == 0 || *tests == 0 {
                    return Err("statements and tests must be positive".into());
                }
                if !(0.0..=1.0).contains(repair_rate) {
                    return Err(format!("repair_rate must be in [0,1], got {repair_rate}"));
                }
                if pool_size == &Some(0) {
                    return Err("pool_size must be positive".into());
                }
            }
        }
        Ok(())
    }

    /// Materialize the scenario (infallible after [`Self::validate`]).
    pub fn build(&self) -> Result<BugScenario, String> {
        self.validate()?;
        Ok(match self {
            ScenarioSpec::Catalog { name } => {
                BugScenario::by_name(name).expect("validated catalog name")
            }
            ScenarioSpec::Synthetic {
                name,
                options,
                x_star,
                statements,
                tests,
                repair_rate,
                world_seed,
                pool_size,
            } => {
                let s = BugScenario::custom(
                    name,
                    ScenarioKind::Synthetic,
                    *options,
                    *x_star,
                    *statements,
                    *tests,
                    *repair_rate,
                    *world_seed,
                );
                match pool_size {
                    Some(p) => s.with_pool_size(*p),
                    None => s,
                }
            }
        })
    }
}

/// One repair session to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job id (path-safe; names the session directory).
    pub id: String,
    /// Owning tenant (path-safe; groups sessions for budgets and traces).
    pub tenant: String,
    /// Scenario to repair.
    pub scenario: ScenarioSpec,
    /// MWU variant driving the session.
    pub algorithm: VariantChoice,
    /// Session RNG seed.
    pub seed: u64,
    /// Update-cycle cap `T`.
    pub max_iterations: usize,
}

impl JobSpec {
    /// Validate ids and knobs; the error says exactly what is wrong.
    pub fn validate(&self) -> Result<(), String> {
        check_name("job id", &self.id)?;
        check_name("tenant", &self.tenant)?;
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".into());
        }
        self.scenario
            .validate()
            .map_err(|e| format!("scenario: {e}"))
    }
}

/// A per-tenant cost budget, enforced at round barriers over the sum of
/// the tenant's session cost snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Tenant the budget applies to.
    pub tenant: String,
    /// Cap on total fitness evaluations (`None`: unlimited).
    pub max_evals: Option<u64>,
    /// Cap on total simulated test milliseconds (`None`: unlimited).
    pub max_ms: Option<u64>,
}

impl BudgetSpec {
    /// Validate the tenant name and that the budget constrains something.
    pub fn validate(&self) -> Result<(), String> {
        check_name("tenant", &self.tenant)?;
        if self.max_evals.is_none() && self.max_ms.is_none() {
            return Err("budget must set max_evals and/or max_ms".into());
        }
        Ok(())
    }

    /// Is `evals` / `ms` over this budget?
    pub fn exceeded(&self, evals: u64, ms: u64) -> bool {
        self.max_evals.is_some_and(|cap| evals > cap) || self.max_ms.is_some_and(|cap| ms > cap)
    }
}

/// One line of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobLine {
    /// Submit a session.
    Job(JobSpec),
    /// Set a tenant budget.
    Budget(BudgetSpec),
}

/// A fully parsed, validated, duplicate-free submission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobBatch {
    /// Jobs in submission order.
    pub jobs: Vec<JobSpec>,
    /// Budgets in submission order (at most one per tenant).
    pub budgets: Vec<BudgetSpec>,
}

/// Why a submission was rejected. Every variant names the offending
/// 1-based line so callers can point at the exact input.
#[derive(Debug)]
pub enum ProtocolError {
    /// A line is not valid UTF-8.
    Utf8 {
        /// Offending line (1-based).
        line: usize,
    },
    /// A line exceeds [`MAX_LINE_BYTES`].
    TooLong {
        /// Offending line (1-based).
        line: usize,
        /// Its length in bytes.
        len: usize,
    },
    /// A line nests deeper than [`MAX_NESTING_DEPTH`].
    TooDeep {
        /// Offending line (1-based).
        line: usize,
    },
    /// A line is not a JSON `JobLine` document.
    Malformed {
        /// Offending line (1-based).
        line: usize,
        /// Parser / decoder reason.
        message: String,
    },
    /// A line decodes but fails semantic validation.
    Invalid {
        /// Offending line (1-based).
        line: usize,
        /// Validation reason.
        message: String,
    },
    /// Two job lines share an id.
    DuplicateId {
        /// Line of the second occurrence (1-based).
        line: usize,
        /// The repeated job id.
        id: String,
    },
    /// Two budget lines target one tenant.
    DuplicateBudget {
        /// Line of the second occurrence (1-based).
        line: usize,
        /// The repeated tenant.
        tenant: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Utf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            ProtocolError::TooLong { line, len } => write!(
                f,
                "line {line}: {len} bytes exceeds the {MAX_LINE_BYTES}-byte line limit"
            ),
            ProtocolError::TooDeep { line } => write!(
                f,
                "line {line}: JSON nests deeper than {MAX_NESTING_DEPTH} levels"
            ),
            ProtocolError::Malformed { line, message } => {
                write!(f, "line {line}: malformed job line: {message}")
            }
            ProtocolError::Invalid { line, message } => {
                write!(f, "line {line}: invalid job line: {message}")
            }
            ProtocolError::DuplicateId { line, id } => {
                write!(f, "line {line}: duplicate job id {id:?}")
            }
            ProtocolError::DuplicateBudget { line, tenant } => {
                write!(f, "line {line}: duplicate budget for tenant {tenant:?}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Encode one protocol line (no trailing newline). [`parse_line`] inverts
/// this exactly.
pub fn encode_line(line: &JobLine) -> String {
    serde_json::to_string(line).expect("job line serializes")
}

/// Parse and validate one line (`line_no` is used in errors, 1-based).
pub fn parse_line(text: &str, line_no: usize) -> Result<JobLine, ProtocolError> {
    if text.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::TooLong {
            line: line_no,
            len: text.len(),
        });
    }
    if nesting_depth(text) > MAX_NESTING_DEPTH {
        return Err(ProtocolError::TooDeep { line: line_no });
    }
    let value = serde_json::from_str_value(text).map_err(|e| ProtocolError::Malformed {
        line: line_no,
        message: e.to_string(),
    })?;
    let parsed = JobLine::from_value(&value).map_err(|e| ProtocolError::Malformed {
        line: line_no,
        message: e.to_string(),
    })?;
    match &parsed {
        JobLine::Job(j) => j.validate(),
        JobLine::Budget(b) => b.validate(),
    }
    .map_err(|message| ProtocolError::Invalid {
        line: line_no,
        message,
    })?;
    Ok(parsed)
}

/// Parse a whole submission (a spool file or a stdin stream). Blank lines
/// are skipped; the first bad line aborts the batch with its line number.
pub fn parse_jobs(bytes: &[u8]) -> Result<JobBatch, ProtocolError> {
    let mut batch = JobBatch::default();
    let mut ids: HashSet<String> = HashSet::new();
    let mut budget_tenants: HashSet<String> = HashSet::new();
    for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let line_no = idx + 1;
        let raw = match raw.last() {
            Some(b'\r') => &raw[..raw.len() - 1],
            _ => raw,
        };
        if raw.len() > MAX_LINE_BYTES {
            return Err(ProtocolError::TooLong {
                line: line_no,
                len: raw.len(),
            });
        }
        let text = std::str::from_utf8(raw).map_err(|_| ProtocolError::Utf8 { line: line_no })?;
        if text.trim().is_empty() {
            continue;
        }
        match parse_line(text.trim(), line_no)? {
            JobLine::Job(job) => {
                if !ids.insert(job.id.clone()) {
                    return Err(ProtocolError::DuplicateId {
                        line: line_no,
                        id: job.id,
                    });
                }
                batch.jobs.push(job);
            }
            JobLine::Budget(budget) => {
                if !budget_tenants.insert(budget.tenant.clone()) {
                    return Err(ProtocolError::DuplicateBudget {
                        line: line_no,
                        tenant: budget.tenant,
                    });
                }
                batch.budgets.push(budget);
            }
        }
    }
    Ok(batch)
}

/// Path-safety check shared by job ids and tenant names: these name
/// directories under the work dir, so they must not traverse or collide.
fn check_name(what: &str, name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err(format!("{what} must be non-empty"));
    }
    if name.len() > MAX_NAME_LEN {
        return Err(format!("{what} {name:?} exceeds {MAX_NAME_LEN} characters"));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "{what} {name:?} contains {c:?}; allowed: [A-Za-z0-9._-]"
        ));
    }
    if name.chars().all(|c| c == '.') {
        return Err(format!("{what} {name:?} is a relative path component"));
    }
    Ok(())
}

/// Maximum bracket-nesting depth of `text`, ignoring brackets inside JSON
/// strings. Linear scan; never fails, never recurses.
fn nesting_depth(text: &str) -> usize {
    let (mut depth, mut max, mut in_str, mut escaped) = (0usize, 0usize, false, false);
    for b in text.bytes() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' | b'[' => {
                    depth += 1;
                    max = max.max(depth);
                }
                b'}' | b']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    max
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_job(id: &str, tenant: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: tenant.into(),
            scenario: ScenarioSpec::Synthetic {
                name: "proto-test".into(),
                options: 24,
                x_star: 6,
                statements: 200,
                tests: 10,
                repair_rate: 0.0,
                world_seed: 5,
                pool_size: None,
            },
            algorithm: VariantChoice::Standard,
            seed: 7,
            max_iterations: 12,
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let lines = [
            JobLine::Job(sample_job("j-1", "acme")),
            JobLine::Budget(BudgetSpec {
                tenant: "acme".into(),
                max_evals: Some(1000),
                max_ms: None,
            }),
        ];
        for line in &lines {
            let text = encode_line(line);
            let back = parse_line(&text, 1).unwrap();
            assert_eq!(&back, line);
        }
    }

    #[test]
    fn batch_skips_blanks_and_orders() {
        let a = encode_line(&JobLine::Job(sample_job("a", "t1")));
        let b = encode_line(&JobLine::Job(sample_job("b", "t2")));
        let budget = encode_line(&JobLine::Budget(BudgetSpec {
            tenant: "t1".into(),
            max_evals: Some(5),
            max_ms: Some(9),
        }));
        let text = format!("\n{a}\r\n\n{budget}\n{b}\n");
        let batch = parse_jobs(text.as_bytes()).unwrap();
        assert_eq!(batch.jobs.len(), 2);
        assert_eq!(batch.jobs[0].id, "a");
        assert_eq!(batch.jobs[1].id, "b");
        assert_eq!(batch.budgets.len(), 1);
    }

    #[test]
    fn duplicate_ids_and_budgets_are_rejected_with_line_numbers() {
        let a = encode_line(&JobLine::Job(sample_job("same", "t1")));
        let text = format!("{a}\n{a}\n");
        match parse_jobs(text.as_bytes()) {
            Err(ProtocolError::DuplicateId { line: 2, id }) => assert_eq!(id, "same"),
            other => panic!("expected duplicate id on line 2, got {other:?}"),
        }
        let b = encode_line(&JobLine::Budget(BudgetSpec {
            tenant: "t".into(),
            max_evals: Some(1),
            max_ms: None,
        }));
        let text = format!("{b}\n{b}\n");
        assert!(matches!(
            parse_jobs(text.as_bytes()),
            Err(ProtocolError::DuplicateBudget { line: 2, .. })
        ));
    }

    #[test]
    fn malformed_invalid_and_hostile_lines_error_precisely() {
        assert!(matches!(
            parse_line("not json", 3),
            Err(ProtocolError::Malformed { line: 3, .. })
        ));
        // Truncated document.
        let text = encode_line(&JobLine::Job(sample_job("j", "t")));
        assert!(matches!(
            parse_line(&text[..text.len() / 2], 1),
            Err(ProtocolError::Malformed { line: 1, .. })
        ));
        // Path-hostile id.
        let mut job = sample_job("j", "t");
        job.id = "../escape".into();
        let line = encode_line(&JobLine::Job(job));
        match parse_line(&line, 4) {
            Err(ProtocolError::Invalid { line: 4, message }) => {
                assert!(message.contains("job id"), "{message}");
            }
            other => panic!("expected invalid id, got {other:?}"),
        }
        // All-dots tenant.
        let mut job = sample_job("j", "t");
        job.tenant = "..".into();
        assert!(parse_line(&encode_line(&JobLine::Job(job)), 1).is_err());
        // Over-deep noise is cut off before the recursive parser runs.
        let deep = "[".repeat(MAX_NESTING_DEPTH + 1);
        assert!(matches!(
            parse_line(&deep, 9),
            Err(ProtocolError::TooDeep { line: 9 })
        ));
        // Over-long line.
        let long = format!("\"{}\"", "x".repeat(MAX_LINE_BYTES));
        assert!(matches!(
            parse_line(&long, 2),
            Err(ProtocolError::TooLong { line: 2, .. })
        ));
        // Non-UTF-8 bytes.
        assert!(matches!(
            parse_jobs(&[0xFF, 0xFE, b'\n']),
            Err(ProtocolError::Utf8 { line: 1 })
        ));
    }

    #[test]
    fn semantic_validation_catches_bad_knobs() {
        let mut job = sample_job("j", "t");
        job.max_iterations = 0;
        assert!(job.validate().is_err());
        let mut job = sample_job("j", "t");
        job.scenario = ScenarioSpec::Synthetic {
            name: "bad".into(),
            options: 10,
            x_star: 11,
            statements: 10,
            tests: 1,
            repair_rate: 0.5,
            world_seed: 1,
            pool_size: None,
        };
        assert!(job.validate().unwrap_err().contains("x_star"));
        let spec = ScenarioSpec::Catalog {
            name: "no-such-bug".into(),
        };
        assert!(spec.validate().unwrap_err().contains("unknown catalog"));
        assert!(ScenarioSpec::Catalog {
            name: "gzip-2009-08-16".into()
        }
        .validate()
        .is_ok());
        let b = BudgetSpec {
            tenant: "t".into(),
            max_evals: None,
            max_ms: None,
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn budget_exceeded_semantics() {
        let b = BudgetSpec {
            tenant: "t".into(),
            max_evals: Some(10),
            max_ms: Some(100),
        };
        assert!(!b.exceeded(10, 100));
        assert!(b.exceeded(11, 0));
        assert!(b.exceeded(0, 101));
    }

    #[test]
    fn nesting_depth_ignores_strings() {
        assert_eq!(nesting_depth(r#"{"a":"}]]]]"}"#), 1);
        assert_eq!(nesting_depth(r#"{"a":[1,[2]]}"#), 3);
        assert_eq!(nesting_depth(r#""\"[""#), 0);
        assert_eq!(nesting_depth("]]]"), 0);
    }
}
