//! # mwrepair-service
//!
//! `mwrepaird`: a long-lived, multi-tenant session manager over the
//! MWRepair online phase — the ROADMAP's "production-scale service" layer.
//!
//! The daemon accepts repair jobs over a JSONL line protocol
//! ([`protocol`]), shards the resulting sessions across the global rayon
//! pool in fixed-size iteration slices, drives every session through
//! [`mwrepair::repair_resumable`] so it is crash-safe at each slice
//! boundary ([`session`]), streams per-session [`mwu_core::trace`] events
//! to per-tenant JSONL trace files, and enforces per-tenant cost budgets
//! through [`apr_sim::CostLedger`] snapshots ([`daemon`]).
//!
//! ## Determinism contract
//!
//! A session's trace file and final report are a pure function of its
//! [`protocol::JobSpec`] and the daemon's slice length: byte-identical
//! whether the session runs alone or next to a thousand concurrent
//! sessions, at any thread count, and across any sequence of cooperative
//! halts and resumes. The contract holds because
//!
//! * every probe RNG is keyed by `(seed, iteration, agent)` and the master
//!   RNG travels in the checkpoint, so slicing never changes a draw;
//! * sessions never share mutable state — each has its own ledger, trace
//!   file, and checkpoint, and the pool-cache entries they share are
//!   immutable after construction;
//! * budget decisions happen only at round barriers, over commutative sums
//!   of per-session cost snapshots of the *same tenant*, so they are
//!   independent of scheduling and of other tenants' load.
//!
//! `tests/tests/service.rs` pins all three properties byte-for-byte;
//! `docs/SERVICE.md` documents the protocol and the work-directory layout.
//!
//! ## Hostile-disk survival
//!
//! Every byte the daemon persists flows through the [`vfs`] storage
//! abstraction. [`vfs::RealVfs`] is the production passthrough;
//! [`vfs::FaultVfs`] is a deterministic storage adversary (the disk
//! analogue of `simnet::faults`) injecting EIO, ENOSPC, torn writes,
//! fsync lies, and slowdowns from a pure keyed hash of
//! `(seed, path, op, attempt)`. Transient failures retry with bounded
//! exponential backoff; persistent failures and session panics
//! **quarantine** the one affected session behind a durable
//! `quarantine.json` post-mortem while every other session's bytes stay
//! identical to a fault-free run — certified by the `torture` binary and
//! `tests/tests/service_faults.rs`, documented in `docs/FAULTS.md`.

#![warn(missing_docs)]
// Denied (not forbidden) so the one scoped exemption in `vfs` — the raw
// `syncfs(2)` syscall behind the group-commit barrier, which std does not
// expose and the offline workspace has no libc stub for — can opt in.
#![deny(unsafe_code)]

pub mod daemon;
pub mod protocol;
pub mod session;
pub mod vfs;

pub use daemon::{Daemon, DaemonConfig, DaemonError, DaemonSummary, SyncBarrierStats};
pub use protocol::{
    encode_line, parse_jobs, parse_line, BudgetSpec, JobBatch, JobLine, JobSpec, ProtocolError,
    ScenarioSpec, MAX_LINE_BYTES, MAX_NESTING_DEPTH,
};
pub use session::{QuarantineRecord, SessionReport, SessionRunner, SessionStatus};
pub use vfs::{
    FaultVfs, RealVfs, StorageFailure, StorageFault, StorageFaultConfig, StorageFaultPlan,
    StorageOp, Vfs,
};
