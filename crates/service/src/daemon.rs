//! The `mwrepaird` daemon: job intake, round scheduling, and per-tenant
//! budget enforcement.
//!
//! A daemon owns a **work directory**. Jobs arrive as JSONL batches
//! ([`crate::protocol`]) — either handed to [`Daemon::submit_bytes`] or
//! found spooled in `<workdir>/jobs.jsonl` at [`Daemon::open`]. Every
//! accepted job becomes a [`SessionRunner`] rooted at
//! `<workdir>/tenants/<tenant>/<job-id>/`; [`Daemon::run`] first rewrites
//! the canonical spool (so a later daemon can reload the exact job set)
//! and then drives all sessions in rounds: each round runs one iteration
//! slice of every active session across the rayon pool, then — at the
//! round barrier — quarantines failed sessions, applies tenant budgets,
//! and records completion latencies.
//!
//! Scheduling is deterministic by construction: sessions share nothing
//! mutable (each has its own ledger, checkpoint, and trace file; cached
//! scenario pools are immutable), and budget decisions are made only at
//! barriers over commutative sums of the owning tenant's own session
//! costs. Thread count, session interleaving, and cooperative halts
//! therefore cannot change any session's trace or report bytes.
//!
//! ## Graceful degradation
//!
//! All storage flows through [`DaemonConfig::vfs`]; transient I/O
//! failures retry with bounded exponential backoff inside each session.
//! A session whose failure survives every retry — or that panics inside
//! the parallel shard (caught per-session via `catch_unwind`) — is
//! **quarantined** at the next round barrier: deactivated behind a
//! durable `quarantine.json` post-mortem with its checkpoint retained,
//! while every other session keeps running and keeps its fault-free
//! bytes. [`Daemon::run`] itself only errors on spool-level persistent
//! failures; it never panics or aborts on a per-session fault.

use crate::protocol::{parse_jobs, BudgetSpec, JobLine, JobSpec, ProtocolError};
use crate::session::{ScenarioData, SessionError, SessionRunner, SessionStatus};
use crate::vfs::{with_retries, RealVfs, StorageFailure, StorageOp, Vfs};
use mwu_core::trace::StorageEvent;
use rayon::prelude::*;
use serde::Serialize;
use simnet::faults::RetryPolicy;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Schema tag of the summary document [`Daemon::run`] returns.
pub const SUMMARY_SCHEMA: &str = "mwrepaird-summary/v1";

/// Schema tag of the `metrics.json` exposition document.
pub const METRICS_SCHEMA: &str = "mwrepaird-metrics/v1";

/// Name of the canonical job spool inside the work directory.
pub const SPOOL_FILE: &str = "jobs.jsonl";

/// Name of the per-run metrics exposition file inside the work directory.
///
/// Unlike traces and reports this file carries wall-clock and is **not**
/// part of the byte-determinism contract; it is rewritten atomically at
/// the end of every [`Daemon::run`] and is purely advisory.
pub const METRICS_FILE: &str = "metrics.json";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Work directory: spool, per-tenant session state, traces.
    pub workdir: PathBuf,
    /// Update cycles per session per round (min 1). Part of the
    /// determinism contract: the same jobs under a different slice length
    /// produce the same bytes, but checkpoint cadence — and therefore
    /// where a cooperative halt can land — differs.
    pub slice_iterations: usize,
    /// Cooperative kill: stop after this many rounds, leaving every
    /// unfinished session checkpointed and resumable.
    pub halt_after_rounds: Option<u64>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// The storage layer every byte goes through. [`RealVfs`] in
    /// production; a [`crate::vfs::FaultVfs`] under test/torture.
    pub vfs: Arc<dyn Vfs>,
    /// Retry policy for transient storage failures (bounded exponential
    /// backoff; exhaustion quarantines the affected session).
    pub retry: RetryPolicy,
    /// Rotate each session's trace into size-capped `trace.NNN.jsonl`
    /// segments once the current segment reaches this many bytes. `None`
    /// keeps the single-file layout. Rotation never splits a slice:
    /// concatenating the segments in order is byte-identical to the
    /// single-file trace, whatever the cap.
    pub trace_segment_bytes: Option<u64>,
    /// Group-commit durability (default on): sessions stage their slice
    /// artifacts and the round barrier makes them durable in one batched
    /// [`Vfs::sync_barrier`] pass — O(1) filesystem synchronization per
    /// round instead of O(active sessions) per-file fsyncs, with the
    /// same crash-order contract and byte-identical artifacts. `false`
    /// restores the eager per-slice fsync discipline.
    pub group_commit: bool,
}

impl DaemonConfig {
    /// Config with default knobs (slice of 16, no halt, progress on, the
    /// real filesystem, default retry policy).
    pub fn new(workdir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            workdir: workdir.into(),
            slice_iterations: 16,
            halt_after_rounds: None,
            quiet: false,
            vfs: Arc::new(RealVfs),
            retry: RetryPolicy::default(),
            trace_segment_bytes: None,
            group_commit: true,
        }
    }
}

/// Why the daemon refused a batch or gave up on a run.
#[derive(Debug)]
pub enum DaemonError {
    /// A JSONL batch failed to parse or validate.
    Protocol(ProtocolError),
    /// A well-formed line conflicts with daemon state (duplicate id with
    /// different content, conflicting budget, intractable variant, …).
    Rejected {
        /// Offending job id or tenant.
        id: String,
        /// What went wrong.
        message: String,
    },
    /// A session failed mid-run. (Per-session faults quarantine instead;
    /// this survives only for callers that drive sessions directly.)
    Session {
        /// The failing session's job id.
        job: String,
        /// The underlying failure.
        error: SessionError,
    },
    /// A daemon-level (spool / workdir) storage operation failed through
    /// every retry. Per-session storage failures quarantine instead.
    Storage(StorageFailure),
    /// Work-directory I/O failure outside any one session.
    Io(std::io::Error),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Protocol(e) => write!(f, "{e}"),
            DaemonError::Rejected { id, message } => write!(f, "rejected {id:?}: {message}"),
            DaemonError::Session { job, error } => write!(f, "session {job:?}: {error}"),
            DaemonError::Storage(e) => write!(f, "spool storage failure: {e}"),
            DaemonError::Io(e) => write!(f, "work directory I/O error: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<ProtocolError> for DaemonError {
    fn from(e: ProtocolError) -> Self {
        DaemonError::Protocol(e)
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<StorageFailure> for DaemonError {
    fn from(e: StorageFailure) -> Self {
        DaemonError::Storage(e)
    }
}

/// End-of-run accounting. Wall-clock lives only here (and in
/// `BENCH_service.json`), never in work-directory artifacts, which must
/// stay byte-deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct DaemonSummary {
    /// Schema tag ([`SUMMARY_SCHEMA`]).
    pub schema: String,
    /// Total sessions under management.
    pub sessions: usize,
    /// Sessions with a `Completed` report.
    pub completed: usize,
    /// Completed sessions that found a repair.
    pub repaired: usize,
    /// Sessions halted with a `BudgetExhausted` report.
    pub budget_exhausted: usize,
    /// Sessions still checkpointed mid-flight (cooperative halt).
    pub halted_active: usize,
    /// Sessions quarantined this run (durable `quarantine.json`,
    /// checkpoint retained for re-arm).
    pub sessions_quarantined: usize,
    /// Storage retries performed (sessions + spool). Zero in a fault-free
    /// run on a healthy disk.
    pub io_retries: u64,
    /// Faults injected by the configured vfs (zero under [`RealVfs`]).
    pub io_faults_injected: u64,
    /// Rounds executed by this run.
    pub rounds: u64,
    /// File syncs made durable through batched group-commit barriers.
    /// Zero in eager mode (every sync then pays its own fsync inline).
    pub io_syncs_batched: u64,
    /// Group-commit barrier latency distribution. All-zero in eager mode.
    pub sync_barrier: SyncBarrierStats,
    /// Wall-clock of this run in milliseconds.
    pub wall_ms: f64,
    /// Per-session completion latency (ms since run start), one entry per
    /// session that finished during this run, in submission order.
    pub session_wall_ms: Vec<f64>,
}

/// Latency distribution of the group-commit barriers a run executed
/// (wall-clock, summary/metrics only — never in deterministic
/// artifacts). All fields zero when no barrier ran (eager mode, or a
/// run with nothing to commit).
#[derive(Debug, Clone, Default, Serialize)]
pub struct SyncBarrierStats {
    /// Barriers executed (including the end-of-run flush).
    pub count: u64,
    /// Median barrier latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile barrier latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest barrier, milliseconds.
    pub max_ms: f64,
    /// Total time inside barriers, milliseconds.
    pub total_ms: f64,
}

impl SyncBarrierStats {
    /// Summarize a run's per-barrier wall-clock samples.
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let at = |q: f64| {
            sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
        };
        SyncBarrierStats {
            count: samples.len() as u64,
            p50_ms: at(0.5),
            p99_ms: at(0.99),
            max_ms: *sorted.last().expect("non-empty"),
            total_ms: samples.iter().sum(),
        }
    }

    /// True when no barrier ever ran (the eager-mode invariant).
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.total_ms == 0.0
    }
}

impl DaemonSummary {
    /// Canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("summary serializes")
    }

    /// The run's storage-health counters as a trace event, ready to feed
    /// an observer (e.g. `MetricsSink::on_storage`).
    pub fn storage_event(&self) -> StorageEvent {
        StorageEvent {
            io_retries: self.io_retries,
            io_faults_injected: self.io_faults_injected,
            sessions_quarantined: self.sessions_quarantined as u64,
        }
    }
}

/// The `metrics.json` exposition document: the run's operational
/// counters plus (when profiling is enabled) the merged span report.
///
/// This is the daemon's one intentionally non-deterministic artifact —
/// it carries wall-clock and machine-local timings and is excluded from
/// the byte-determinism contract that covers traces, checkpoints, and
/// reports.
#[derive(Debug, Clone, Serialize)]
pub struct DaemonMetrics {
    /// Schema tag ([`METRICS_SCHEMA`]).
    pub schema: String,
    /// The run's accounting, identical to what [`Daemon::run`] returned.
    pub summary: DaemonSummary,
    /// Merged profiling spans, present only when the profiler was
    /// enabled for this process.
    pub profile: Option<mwu_core::prof::ProfileReport>,
}

impl DaemonMetrics {
    /// Canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics serialize")
    }
}

/// A multi-tenant session-manager daemon over one work directory.
pub struct Daemon {
    config: DaemonConfig,
    sessions: Vec<SessionRunner>,
    /// Job id → index into `sessions`, for duplicate detection.
    index: HashMap<String, usize>,
    /// At most one budget per tenant, in first-seen order.
    budgets: Vec<BudgetSpec>,
    /// Scenario-spec cache key → shared scenario + pool. Pools are built
    /// once per distinct spec with a fixed pool seed (part of the
    /// scenario's identity) and shared immutably across sessions.
    scenarios: HashMap<String, Arc<ScenarioData>>,
    /// Storage retries performed on the spool / workdir (not sessions).
    spool_retries: u64,
    /// File syncs made durable through batched barriers this run.
    io_syncs_batched: u64,
    /// Wall-clock of each group-commit barrier, milliseconds.
    barrier_ms: Vec<f64>,
}

impl Daemon {
    /// Open a daemon over `config.workdir`, creating it if needed and
    /// reloading any spooled job set from a previous run (sessions resume
    /// from their checkpoints; finished sessions stay finished;
    /// quarantined sessions are re-armed).
    pub fn open(config: DaemonConfig) -> Result<Self, DaemonError> {
        let mut daemon = Daemon {
            config,
            sessions: Vec::new(),
            index: HashMap::new(),
            budgets: Vec::new(),
            scenarios: HashMap::new(),
            spool_retries: 0,
            io_syncs_batched: 0,
            barrier_ms: Vec::new(),
        };
        let workdir = daemon.config.workdir.clone();
        daemon.spooling(StorageOp::CreateDir, workdir.clone(), |vfs, p| {
            vfs.create_dir_all(p)
        })?;
        let spool = workdir.join(SPOOL_FILE);
        if daemon.config.vfs.exists(&spool) {
            let _span = mwu_core::prof::span(mwu_core::prof::Phase::SpoolScan);
            let bytes = daemon.spooling(StorageOp::Read, spool, |vfs, p| vfs.read(p))?;
            daemon.submit_bytes(&bytes)?;
        }
        Ok(daemon)
    }

    /// Run a daemon-level (non-session) storage operation under the retry
    /// policy, counting retries toward the spool tally.
    fn spooling<T>(
        &mut self,
        op: StorageOp,
        path: PathBuf,
        mut f: impl FnMut(&dyn Vfs, &std::path::Path) -> std::io::Result<T>,
    ) -> Result<T, DaemonError> {
        let vfs = Arc::clone(&self.config.vfs);
        let policy = self.config.retry;
        with_retries(&policy, op, &path, &mut self.spool_retries, || {
            f(vfs.as_ref(), &path)
        })
        .map_err(DaemonError::Storage)
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// All sessions in submission order.
    pub fn sessions(&self) -> &[SessionRunner] {
        &self.sessions
    }

    /// Look up a session by job id.
    pub fn session(&self, id: &str) -> Option<&SessionRunner> {
        self.index.get(id).map(|&i| &self.sessions[i])
    }

    /// Submit a JSONL batch (see [`crate::protocol`]). Resubmitting a
    /// byte-equal job or budget is an idempotent no-op, so replaying the
    /// spool after a crash is safe; a known id with *different* content is
    /// rejected. Returns the number of newly accepted jobs.
    pub fn submit_bytes(&mut self, bytes: &[u8]) -> Result<usize, DaemonError> {
        let batch = parse_jobs(bytes)?;
        for budget in batch.budgets {
            match self.budgets.iter().find(|b| b.tenant == budget.tenant) {
                Some(existing) if *existing == budget => {}
                Some(_) => {
                    return Err(DaemonError::Rejected {
                        id: budget.tenant,
                        message: "conflicting budget for this tenant already registered".into(),
                    })
                }
                None => self.budgets.push(budget),
            }
        }
        let mut accepted = 0;
        for job in batch.jobs {
            if let Some(&i) = self.index.get(&job.id) {
                if *self.sessions[i].job() == job {
                    continue;
                }
                return Err(DaemonError::Rejected {
                    id: job.id,
                    message: "job id already registered with different content".into(),
                });
            }
            let session = self.open_session(job)?;
            self.index
                .insert(session.job().id.clone(), self.sessions.len());
            self.sessions.push(session);
            accepted += 1;
        }
        Ok(accepted)
    }

    fn open_session(&mut self, job: JobSpec) -> Result<SessionRunner, DaemonError> {
        let key = job.scenario.cache_key();
        let data = match self.scenarios.get(&key) {
            Some(d) => Arc::clone(d),
            None => {
                let scenario = job
                    .scenario
                    .build()
                    .map_err(|message| DaemonError::Rejected {
                        id: job.id.clone(),
                        message,
                    })?;
                // Pool seed is fixed: the pool is part of the scenario's
                // identity, shared by every job naming the same spec.
                let pool = scenario.build_pool(1, None);
                let data = Arc::new(ScenarioData { scenario, pool });
                self.scenarios.insert(key, Arc::clone(&data));
                data
            }
        };
        if job.algorithm == mwrepair::VariantChoice::Distributed {
            let config = mwrepair::MwRepairConfig::seeded(job.seed);
            let arms = mwrepair::effective_arms(data.pool.len(), &config);
            if !mwu_core::DistributedConfig::default().is_tractable(arms) {
                return Err(DaemonError::Rejected {
                    id: job.id,
                    message: format!("distributed variant intractable at {arms} arms"),
                });
            }
        }
        // open_on only errs on invariants caught before touching disk;
        // disk-reconciliation failures are latched inside the runner and
        // quarantined at the first barrier.
        SessionRunner::open_with(
            job,
            data,
            &self.config.workdir,
            Arc::clone(&self.config.vfs),
            self.config.retry,
            self.config.trace_segment_bytes,
        )
        .map(|mut runner| {
            runner.set_group_commit(self.config.group_commit);
            runner
        })
        .map_err(|error| DaemonError::Session {
            job: "<open>".into(),
            error,
        })
    }

    /// Persist the canonical spool (budgets first, then jobs, in
    /// submission order) so a later [`Daemon::open`] reloads this exact
    /// job set.
    fn write_spool(&mut self) -> Result<(), DaemonError> {
        let mut doc = String::new();
        for b in &self.budgets {
            doc.push_str(&crate::protocol::encode_line(&JobLine::Budget(b.clone())));
            doc.push('\n');
        }
        for s in &self.sessions {
            doc.push_str(&crate::protocol::encode_line(&JobLine::Job(
                s.job().clone(),
            )));
            doc.push('\n');
        }
        let spool = self.config.workdir.join(SPOOL_FILE);
        self.spooling(StorageOp::AtomicWrite, spool, |vfs, p| {
            vfs.write_atomic(p, doc.as_bytes())
        })?;
        Ok(())
    }

    /// Quarantine every session with a latched error. Runs at round
    /// barriers (and once before the first round, for sessions whose
    /// disk reconciliation failed at open).
    fn absorb_failures(&mut self) {
        let quiet = self.config.quiet;
        for s in &mut self.sessions {
            if s.quarantine_if_failed() && !quiet {
                let q = s.quarantine().expect("just quarantined");
                eprintln!(
                    "mwrepaird: quarantined session {:?} ({}: {})",
                    q.job_id,
                    q.kind,
                    q.errors.last().map(String::as_str).unwrap_or("?"),
                );
            }
        }
    }

    /// The group commit executed inside every round barrier: one batched
    /// [`Vfs::sync_barrier`] makes every session's staged bytes — trace
    /// appends and the `<doc>.tmp` of staged replaces — durable in a
    /// single pass, then each session publishes its staged renames and
    /// promotes its checkpoint/report. The two-phase order *is* the
    /// crash contract: no `session.json` (or `report.json`) becomes
    /// visible before the trace bytes it vouches for are durable. A path
    /// the batched pass fails is retried individually through its owning
    /// session's budget; exhaustion quarantines that session alone, and
    /// the epoch commits for everyone else.
    fn group_commit(&mut self) {
        if !self.config.group_commit {
            return;
        }
        let mut flat: Vec<PathBuf> = Vec::new();
        let mut owner: Vec<usize> = Vec::new();
        for (i, s) in self.sessions.iter().enumerate() {
            if !s.is_active() {
                continue; // errored slices discard their stage at commit
            }
            for p in s.staged_sync_paths() {
                flat.push(p);
                owner.push(i);
            }
        }
        if !flat.is_empty() {
            let barrier_start = Instant::now();
            let results = self.config.vfs.sync_barrier(&flat);
            for (k, result) in results.into_iter().enumerate() {
                if result.is_err() {
                    self.sessions[owner[k]].retry_staged_sync(&flat[k]);
                }
            }
            self.io_syncs_batched += flat.len() as u64;
            self.barrier_ms
                .push(barrier_start.elapsed().as_secs_f64() * 1e3);
        }
        for s in &mut self.sessions {
            s.commit_epoch();
        }
    }

    /// Drive all sessions to completion (or to `halt_after_rounds`),
    /// returning the run's accounting. Per-session faults and panics
    /// quarantine that one session at the next round barrier; the run
    /// keeps going for everyone else. The only fatal errors are
    /// spool-level storage failures — and even then everything already
    /// persisted stays valid and resumable.
    pub fn run(&mut self) -> Result<DaemonSummary, DaemonError> {
        self.write_spool()?;
        let start = Instant::now();
        let slice = self.config.slice_iterations.max(1);
        let mut rounds: u64 = 0;
        // Sessions whose open-time disk reconciliation failed are
        // quarantined up front so they can't spin the round loop.
        self.absorb_failures();
        loop {
            let active = self.sessions.iter().filter(|s| s.is_active()).count();
            if active == 0 {
                break;
            }
            if let Some(cap) = self.config.halt_after_rounds {
                if rounds >= cap {
                    break;
                }
            }
            if !self.config.quiet && rounds.is_multiple_of(50) {
                eprintln!("mwrepaird: round {rounds}, {active} active sessions");
            }
            // Each session is unwind-safe here: a panicking slice is
            // caught before it can poison the pool, latched, and
            // quarantined at the barrier below. Nothing durable advanced
            // (persistence is crash-ordered), so the session stays
            // resumable from its last checkpoint.
            self.sessions.par_iter_mut().for_each(|s| {
                let run =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.run_slice(slice)));
                if let Err(payload) = run {
                    s.latch_panic(payload);
                }
            });
            rounds += 1;
            // Round barrier: group commit first (staged bytes become
            // durable and vouched for — budgets only ever charge durable
            // slices), then quarantines, then budgets (which may
            // themselves latch write failures), then latency.
            let barrier_span = mwu_core::prof::span(mwu_core::prof::Phase::Schedule);
            self.group_commit();
            self.absorb_failures();
            self.enforce_budgets();
            self.absorb_failures();
            drop(barrier_span);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            for s in &mut self.sessions {
                if s.completed_this_run() && s.wall_ms.is_none() {
                    s.wall_ms = Some(elapsed_ms);
                }
            }
        }
        // End-of-run flush: the last epoch's renames (published reports,
        // replaced session.json files) ride the *next* barrier on Linux's
        // syncfs path — there is none after the final round, so issue one
        // covering the work directory before the summary claims anything
        // finished. Persistent failure is daemon-level, like the spool.
        if self.config.group_commit && rounds > 0 {
            let flush_start = Instant::now();
            let workdir = self.config.workdir.clone();
            self.spooling(StorageOp::SyncFile, workdir, |vfs, p| {
                vfs.sync_barrier(std::slice::from_ref(&p.to_path_buf()))
                    .pop()
                    .unwrap_or(Ok(()))
            })?;
            self.io_syncs_batched += 1;
            self.barrier_ms
                .push(flush_start.elapsed().as_secs_f64() * 1e3);
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut completed = 0;
        let mut repaired = 0;
        let mut budget_exhausted = 0;
        let mut session_wall_ms = Vec::new();
        let mut sessions_quarantined = 0;
        let mut io_retries = self.spool_retries;
        for s in &self.sessions {
            io_retries += s.io_retries();
            if s.quarantine().is_some() {
                sessions_quarantined += 1;
            }
            if let Some(r) = s.report() {
                match r.status {
                    SessionStatus::Completed => {
                        completed += 1;
                        if r.repaired {
                            repaired += 1;
                        }
                    }
                    SessionStatus::BudgetExhausted => budget_exhausted += 1,
                }
            }
            if let Some(ms) = s.wall_ms() {
                session_wall_ms.push(ms);
            }
        }
        let halted_active = self.sessions.iter().filter(|s| s.is_active()).count();
        let summary = DaemonSummary {
            schema: SUMMARY_SCHEMA.into(),
            sessions: self.sessions.len(),
            completed,
            repaired,
            budget_exhausted,
            halted_active,
            sessions_quarantined,
            io_retries,
            io_faults_injected: self.config.vfs.injected_faults(),
            rounds,
            io_syncs_batched: self.io_syncs_batched,
            sync_barrier: SyncBarrierStats::from_samples(&self.barrier_ms),
            wall_ms,
            session_wall_ms,
        };
        self.write_metrics(&summary);
        Ok(summary)
    }

    /// Atomically (re)write `<workdir>/metrics.json` through the vfs.
    /// Best-effort by design: exposition must never fail or quarantine a
    /// run, so storage errors are swallowed (the summary still reaches
    /// the caller).
    fn write_metrics(&mut self, summary: &DaemonSummary) {
        let metrics = DaemonMetrics {
            schema: METRICS_SCHEMA.into(),
            summary: summary.clone(),
            profile: mwu_core::prof::enabled().then(mwu_core::prof::snapshot),
        };
        let doc = metrics.to_json() + "\n";
        let path = self.config.workdir.join(METRICS_FILE);
        let _ = self.spooling(StorageOp::AtomicWrite, path, |vfs, p| {
            vfs.write_atomic(p, doc.as_bytes())
        });
    }

    /// Apply tenant budgets at a round barrier: sum every tenant session's
    /// deterministic cost snapshot (finished sessions included — budgets
    /// cover the tenant's whole job set) and finish the still-active ones
    /// as budget-exhausted once the cap is strictly exceeded. A report
    /// write the disk refuses is latched and quarantined like any other
    /// session fault. Quarantined sessions contribute only their last
    /// durable checkpoint's cost — a slice that failed to persist is
    /// never charged.
    fn enforce_budgets(&mut self) {
        for budget in &self.budgets {
            let (mut evals, mut ms) = (0u64, 0u64);
            for s in self
                .sessions
                .iter()
                .filter(|s| s.job().tenant == budget.tenant)
            {
                let c = s.cost();
                evals += c.fitness_evals;
                ms += c.simulated_ms;
            }
            if !budget.exceeded(evals, ms) {
                continue;
            }
            for s in &mut self.sessions {
                if s.job().tenant == budget.tenant && s.is_active() {
                    if let Err(error) = s.finish_budget_exhausted() {
                        s.latch(error);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::encode_line;
    use crate::protocol::tests::sample_job;

    fn tmp_workdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mwrd-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quiet_config(workdir: &std::path::Path) -> DaemonConfig {
        let mut c = DaemonConfig::new(workdir.to_path_buf());
        c.quiet = true;
        c.slice_iterations = 4;
        c
    }

    fn batch_of(jobs: &[JobSpec], budgets: &[BudgetSpec]) -> Vec<u8> {
        let mut doc = String::new();
        for b in budgets {
            doc.push_str(&encode_line(&JobLine::Budget(b.clone())));
            doc.push('\n');
        }
        for j in jobs {
            doc.push_str(&encode_line(&JobLine::Job(j.clone())));
            doc.push('\n');
        }
        doc.into_bytes()
    }

    #[test]
    fn submit_is_idempotent_and_rejects_conflicts() {
        let workdir = tmp_workdir("idem");
        let mut d = Daemon::open(quiet_config(&workdir)).unwrap();
        let job = sample_job("j1", "alice");
        let bytes = batch_of(std::slice::from_ref(&job), &[]);
        assert_eq!(d.submit_bytes(&bytes).unwrap(), 1);
        assert_eq!(d.submit_bytes(&bytes).unwrap(), 0);
        let mut conflicting = job;
        conflicting.seed += 1;
        let err = d.submit_bytes(&batch_of(&[conflicting], &[])).unwrap_err();
        assert!(matches!(err, DaemonError::Rejected { .. }), "{err}");
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn run_completes_jobs_and_spool_reloads() {
        let workdir = tmp_workdir("spool");
        let jobs = [sample_job("j1", "alice"), sample_job("j2", "bob")];
        {
            let mut d = Daemon::open(quiet_config(&workdir)).unwrap();
            d.submit_bytes(&batch_of(&jobs, &[])).unwrap();
            let summary = d.run().unwrap();
            assert_eq!(summary.sessions, 2);
            assert_eq!(summary.completed, 2);
            assert_eq!(summary.halted_active, 0);
            assert_eq!(summary.session_wall_ms.len(), 2);
            assert_eq!(summary.sessions_quarantined, 0);
            assert_eq!(summary.io_retries, 0, "fault-free run must not retry");
            assert_eq!(summary.io_faults_injected, 0);
        }
        // Reload from the spool alone: everything is already done.
        let mut d = Daemon::open(quiet_config(&workdir)).unwrap();
        assert_eq!(d.sessions().len(), 2);
        let summary = d.run().unwrap();
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.rounds, 0);
        assert!(summary.session_wall_ms.is_empty());
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn budget_exhaustion_halts_tenant_with_checkpoint() {
        let workdir = tmp_workdir("budget");
        let job = sample_job("j1", "alice");
        let budget = BudgetSpec {
            tenant: "alice".into(),
            max_evals: Some(1),
            max_ms: None,
        };
        let mut d = Daemon::open(quiet_config(&workdir)).unwrap();
        d.submit_bytes(&batch_of(&[job], &[budget])).unwrap();
        let summary = d.run().unwrap();
        assert_eq!(summary.budget_exhausted, 1);
        assert_eq!(summary.completed, 0);
        let s = d.session("j1").unwrap();
        let report = s.report().unwrap();
        assert_eq!(report.status, SessionStatus::BudgetExhausted);
        assert!(report.iterations < s.job().max_iterations);
        assert!(s.dir().join("session.json").exists(), "checkpoint retained");
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn cooperative_halt_then_resume_matches_uninterrupted() {
        let ref_dir = tmp_workdir("halt-ref");
        let jobs = [sample_job("j1", "alice"), sample_job("j2", "bob")];
        {
            let mut d = Daemon::open(quiet_config(&ref_dir)).unwrap();
            d.submit_bytes(&batch_of(&jobs, &[])).unwrap();
            d.run().unwrap();
        }
        let workdir = tmp_workdir("halt");
        {
            let mut config = quiet_config(&workdir);
            config.halt_after_rounds = Some(1);
            let mut d = Daemon::open(config).unwrap();
            d.submit_bytes(&batch_of(&jobs, &[])).unwrap();
            let summary = d.run().unwrap();
            assert_eq!(summary.rounds, 1);
            assert_eq!(summary.halted_active, 2);
        }
        {
            // Resume purely from the spool: no resubmission.
            let mut d = Daemon::open(quiet_config(&workdir)).unwrap();
            let summary = d.run().unwrap();
            assert_eq!(summary.completed, 2);
        }
        for job in &jobs {
            let rel = PathBuf::from("tenants").join(&job.tenant).join(&job.id);
            let trace_a = std::fs::read(ref_dir.join(&rel).join("trace.jsonl")).unwrap();
            let trace_b = std::fs::read(workdir.join(&rel).join("trace.jsonl")).unwrap();
            assert_eq!(trace_a, trace_b, "trace bytes diverged for {}", job.id);
            let report_a = std::fs::read(ref_dir.join(&rel).join("report.json")).unwrap();
            let report_b = std::fs::read(workdir.join(&rel).join("report.json")).unwrap();
            assert_eq!(report_a, report_b);
        }
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&workdir).unwrap();
    }
}
