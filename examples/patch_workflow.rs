//! The complete patch workflow a deployment would run: localize the fault,
//! repair with MWRepair, minimize the patch with delta debugging, and
//! materialize the final program text.
//!
//! ```text
//! cargo run --release -p mwrepair-examples --bin patch_workflow [scenario]
//! ```

use apr_sim::{localize, BugScenario, CostLedger, Formula};
use mwrepair::{minimize_patch, repair_with_variant, MwRepairConfig, VariantChoice};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "libtiff-2005-12-14".to_string());
    let scenario = match BugScenario::by_name(&name) {
        Some(s) => s,
        None => {
            eprintln!("unknown scenario {name:?}; available:");
            for s in BugScenario::catalog_all() {
                eprintln!("  {}", s.name);
            }
            std::process::exit(2);
        }
    };
    println!("=== {} ===", scenario.name);

    // 1. Fault localization (spectrum-based, Ochiai).
    let loc = localize(&scenario.program, &scenario.suite, Formula::Ochiai);
    let top: Vec<usize> = loc.ranked_sites().into_iter().take(5).collect();
    println!("\n1. fault localization (Ochiai): top suspicious statements {top:?}");
    println!(
        "   true defect statement {} ranks #{} of {}",
        scenario.world.defect_site,
        loc.rank_of(scenario.world.defect_site) + 1,
        scenario.program.len()
    );

    // 2. Precompute + online repair.
    let ledger = CostLedger::new();
    println!(
        "\n2. precomputing the safe-mutation pool ({} targets)...",
        scenario.pool_size
    );
    let pool = scenario.build_pool(11, Some(&ledger));
    println!("   pool of {} safe mutations", pool.len());
    let out = repair_with_variant(
        &scenario,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(11),
        Some(&ledger),
    )
    .expect("standard is tractable");
    let patch = match out.repair {
        Some(p) => p,
        None => {
            println!("   no repair within budget ({} probes)", out.probes);
            return;
        }
    };
    println!(
        "   repaired at update cycle {} with a composition of {} mutations",
        patch.iteration,
        patch.mutations.len()
    );

    // 3. Patch minimization (ddmin).
    let min = minimize_patch(&scenario, &patch.mutations, Some(&ledger));
    println!(
        "\n3. ddmin minimization: {} mutations -> {} ({} extra suite runs)",
        min.original_size,
        min.mutations.len(),
        min.evals_used
    );
    for m in &min.mutations {
        println!(
            "   edit: {:?} at statement {} (donor {})",
            m.op, m.site, m.donor
        );
    }

    // 4. Materialize the patched program.
    let mutant = apr_sim::apply_mutations(&scenario.program, &min.mutations);
    println!(
        "\n4. materialized mutant: {} statements (was {}), {} edits applied",
        mutant.len(),
        scenario.program.len(),
        mutant.applied
    );
    let verify = scenario.evaluate(&min.mutations, None);
    println!(
        "   verification: fitness {}/{} — repaired = {}",
        verify.fitness,
        scenario.suite.max_fitness(),
        verify.repaired
    );

    println!(
        "\ntotal simulated cost: {} fitness evals, {} critical-path sim-ms (speedup {:.0}x)",
        ledger.fitness_evals(),
        ledger.critical_path_ms(),
        ledger.snapshot().parallel_speedup()
    );
}
