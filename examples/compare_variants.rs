//! Side-by-side comparison of the three MWU variants on one dataset,
//! printing the quantities behind Tables II–IV for a single cell.
//!
//! ```text
//! cargo run --release -p mwrepair-examples --bin compare_variants [dataset]
//! ```
//!
//! `dataset` is any catalog name (default `unimodal256`); try `random1024`
//! or `Chart26`.

use mwu_core::prelude::*;
use mwu_core::stats::RunningStats;
use mwu_datasets::catalog;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unimodal256".to_string());
    let dataset = match catalog::by_name(&name) {
        Some(d) => d,
        None => {
            eprintln!("unknown dataset {name:?}; catalog:");
            for d in mwu_datasets::full_catalog() {
                eprintln!("  {} (k = {})", d.name, d.size());
            }
            std::process::exit(2);
        }
    };
    let k = dataset.size();
    println!(
        "dataset {} — {} options, best value {:.3}\n",
        dataset.name,
        k,
        dataset.best_value()
    );
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>12} {:>10}",
        "variant", "iters", "accuracy%", "cpu-iters", "congestion", "converged"
    );

    let replicates = 20;
    for variant in ["standard", "distributed", "slate"] {
        let mut iters = RunningStats::new();
        let mut acc = RunningStats::new();
        let mut cpu = RunningStats::new();
        let mut congestion = RunningStats::new();
        let mut converged = 0;
        let mut intractable = false;
        for rep in 0..replicates {
            let cfg = RunConfig::seeded(mwu_core::rng::mix(&[99, rep]));
            let mut bandit = dataset.bandit();
            let outcome = match variant {
                "standard" => {
                    let mut alg = StandardMwu::new(k, StandardConfig::default());
                    run_to_convergence(&mut alg, &mut bandit, &cfg)
                }
                "slate" => {
                    let mut alg = SlateMwu::new(k, SlateConfig::default());
                    run_to_convergence(&mut alg, &mut bandit, &cfg)
                }
                _ => match DistributedMwu::try_new(k, DistributedConfig::default()) {
                    Ok(mut alg) => run_to_convergence(&mut alg, &mut bandit, &cfg),
                    Err(_) => {
                        intractable = true;
                        break;
                    }
                },
            };
            iters.push(outcome.iterations as f64);
            acc.push(outcome.accuracy(&dataset.values));
            cpu.push(outcome.cpu_iterations as f64);
            congestion.push(outcome.comm.peak_congestion as f64);
            if outcome.converged {
                converged += 1;
            }
        }
        if intractable {
            println!("{variant:<12} {:>10}", "— intractable (population cap)");
            continue;
        }
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>14.0} {:>12.1} {:>7}/{}",
            variant,
            iters.mean(),
            acc.mean(),
            cpu.mean(),
            congestion.mean(),
            converged,
            replicates,
        );
    }
    println!("\ncongestion = peak per-round in-degree: n−1 for the globally-");
    println!("synchronized variants, ln n / ln ln n (balls-into-bins) for Distributed.");
}
