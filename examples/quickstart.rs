//! Quickstart: run each MWU variant on a small unimodal bandit and print
//! what it learned.
//!
//! ```text
//! cargo run --release -p mwrepair-examples --bin quickstart
//! ```

use mwu_core::prelude::*;

fn main() {
    // A 32-arm bandit shaped like the paper's repair-density curves:
    // v(x) ∝ x·e^(−x/8), peaking at arm index 7 (x = 8).
    let raw: Vec<f64> = (1..=32)
        .map(|x| {
            let x = x as f64;
            x * (-x / 8.0).exp()
        })
        .collect();
    let peak = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let values: Vec<f64> = raw.iter().map(|v| 0.9 * v / peak).collect();
    let best = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    println!(
        "ground truth: best arm = {best} (value {:.3})\n",
        values[best]
    );

    // Standard MWU: full information, one agent per arm.
    let mut standard = StandardMwu::new(32, StandardConfig::default());
    let mut bandit = ValueBandit::bernoulli(values.clone());
    let out = run_to_convergence(&mut standard, &mut bandit, &RunConfig::seeded(42));
    report("Standard", &out, &values);

    // Slate MWU: evaluates a small subset per cycle.
    let mut slate = SlateMwu::new(32, SlateConfig::default());
    let mut bandit = ValueBandit::bernoulli(values.clone());
    let out = run_to_convergence(&mut slate, &mut bandit, &RunConfig::seeded(42));
    report("Slate", &out, &values);

    // Distributed MWU: a population of memoryless agents.
    let mut distributed = DistributedMwu::new(32, DistributedConfig::default());
    let mut bandit = ValueBandit::bernoulli(values.clone());
    let out = run_to_convergence(&mut distributed, &mut bandit, &RunConfig::seeded(42));
    report("Distributed", &out, &values);
}

fn report(name: &str, out: &RunOutcome, values: &[f64]) {
    println!(
        "{name:12} leader arm {:2}  accuracy {:5.1}%  {} update cycles, {} CPU-iterations{}",
        out.leader,
        out.accuracy(values),
        out.iterations,
        out.cpu_iterations,
        if out.converged {
            ""
        } else {
            "  (hit iteration cap)"
        },
    );
}
