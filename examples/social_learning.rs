//! Distributed MWU as a social-learning simulation on the `simnet`
//! message-passing runtime, with live congestion accounting.
//!
//! The Fig. 3 protocol is expressed here as *actual message-passing
//! agents*: each round, an agent asks one random neighbor what option it
//! holds (a request message), evaluates that option, and adopts it
//! probabilistically. The simnet engine measures real per-round congestion
//! — reproducing the balls-into-bins behaviour the paper analyses.
//!
//! ```text
//! cargo run --release -p mwrepair-examples --bin social_learning
//! ```

use bytes::Bytes;
use parking_lot::Mutex;
use rand::Rng;
use simnet::{Context, Network};
use std::sync::Arc;

const K: usize = 12; // options
const N: usize = 300; // agents
const MU: f64 = 0.05; // exploration probability
const ALPHA: f64 = 0.02; // adopt-on-failure probability
const BETA: f64 = 0.90; // adopt-on-success probability
const ROUNDS: usize = 60;

fn main() {
    // Option values: a unimodal bump over 12 options.
    let values: Vec<f64> = (1..=K)
        .map(|x| {
            let x = x as f64;
            0.9 * (x * (-x / 4.0).exp()) / (4.0 * (-1.0f64).exp()).abs()
        })
        .map(|v| v.clamp(0.0, 0.95))
        .collect();
    let best = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    println!("social learning over {K} options, {N} agents; best option = {best}\n");

    // Shared blackboard of current choices (the engine delivers messages
    // with one round of latency; agents publish their choice so neighbors
    // can observe it — the publication is what the request/response pair
    // would carry, and the message we *do* send models the observation
    // traffic whose congestion we measure).
    let choices: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new((0..N).map(|j| j % K).collect()));

    let mut net = Network::new(N, 2024);
    for _ in 0..N {
        let choices = Arc::clone(&choices);
        let values = values.clone();
        net.add_agent(move |ctx: &mut Context<'_>| {
            let me = ctx.id();
            let n = ctx.n_agents();
            // Sample step: explore or observe a random neighbor.
            let explore = ctx.rng().gen::<f64>() < MU;
            let observed = if explore {
                ctx.rng().gen_range(0..K)
            } else {
                let mut nb = ctx.rng().gen_range(0..n - 1);
                if nb >= me {
                    nb += 1;
                }
                // The observation is one message worth of traffic to nb.
                ctx.send(nb, Bytes::from_static(b"observe"));
                choices.lock()[nb]
            };
            // Evaluate the observed option (Bernoulli in its true value).
            let success = ctx.rng().gen::<f64>() < values[observed];
            let adopt_p = if success { BETA } else { ALPHA };
            if ctx.rng().gen::<f64>() < adopt_p {
                choices.lock()[me] = observed;
            }
        });
    }

    println!(
        "{:>6} {:>16} {:>12} {:>12}",
        "round", "leader (share)", "congestion", "messages"
    );
    for round in 0..ROUNDS {
        let stats = net.step();
        if round % 5 == 0 || round == ROUNDS - 1 {
            let snapshot = choices.lock().clone();
            let mut counts = [0usize; K];
            for c in snapshot {
                counts[c] += 1;
            }
            let (leader, &count) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
            println!(
                "{:>6} {:>8} ({:>4.1}%) {:>12} {:>12}",
                round,
                leader,
                100.0 * count as f64 / N as f64,
                stats.max_in_degree,
                stats.messages
            );
        }
    }

    let net_stats = net.stats();
    let theory = simnet::expected_max_load(N);
    println!(
        "\nmean per-round congestion {:.2} vs balls-into-bins theory ln n/ln ln n = {:.2}",
        net_stats.mean_congestion(),
        theory
    );
    println!(
        "(a global synchronization would cost {} every round)",
        N - 1
    );
}
