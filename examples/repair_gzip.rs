//! End-to-end MWRepair on the simulated gzip-2009-08-16 scenario: the
//! paper's Fig. 5 pipeline.
//!
//! Phase 1 precomputes the safe-mutation pool (embarrassingly parallel,
//! amortized across every bug in the program); phase 2 runs the online
//! multi-armed-bandit search for a composition that repairs the defect.
//!
//! ```text
//! cargo run --release -p mwrepair-examples --bin repair_gzip
//! ```

use apr_sim::{BugScenario, CostLedger};
use mwrepair::{repair_with_variant, MwRepairConfig, VariantChoice};

fn main() {
    let scenario = BugScenario::by_name("gzip-2009-08-16").expect("catalog scenario");
    println!(
        "scenario: {} — {} statements, {} tests ({} required + {} bug-inducing)",
        scenario.name,
        scenario.program.len(),
        scenario.suite.len(),
        scenario.suite.n_required(),
        scenario.suite.n_bug_tests(),
    );
    println!(
        "repair-density optimum (ground truth, unknown to the search): x* = {}\n",
        scenario.density_optimum()
    );

    // Phase 1 — precompute.
    let precompute = CostLedger::new();
    println!("phase 1: precomputing the safe-mutation pool ...");
    let pool = scenario.build_pool(7, Some(&precompute));
    println!(
        "  pool: {} safe mutations from {} candidates ({} fitness evals, critical path {} sim-ms)\n",
        pool.len(),
        pool.candidates_tested(),
        precompute.fitness_evals(),
        precompute.critical_path_ms(),
    );

    // Phase 2 — online bandit search (Standard MWU: the paper's winner for
    // the APR regime).
    let online = CostLedger::new();
    println!("phase 2: online search (Standard MWU over composition sizes) ...");
    let outcome = repair_with_variant(
        &scenario,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(7),
        Some(&online),
    )
    .expect("standard is always tractable");

    match &outcome.repair {
        Some(rep) => {
            println!(
                "  REPAIRED at iteration {} by agent {}: composition of {} mutations",
                rep.iteration,
                rep.agent,
                rep.mutations.len()
            );
            println!(
                "  first mutations of the patch: {:?}",
                &rep.mutations[..rep.mutations.len().min(3)]
            );
            // Independently verify the patch.
            let verify = scenario.evaluate(&rep.mutations, None);
            println!(
                "  verification: survived = {}, repaired = {}, fitness = {}/{}",
                verify.survived,
                verify.repaired,
                verify.fitness,
                scenario.suite.max_fitness()
            );
        }
        None => println!("  no repair within the iteration budget"),
    }
    println!(
        "\nonline cost: {} fitness evals, critical path {} sim-ms (parallel speedup {:.0}×)",
        online.fitness_evals(),
        online.critical_path_ms(),
        online.snapshot().parallel_speedup(),
    );
    println!(
        "bandit state at termination: leading composition size {} (optimum {})",
        outcome.leader_arm,
        scenario.density_optimum()
    );
}
