//! Offline vendored `proptest` subset.
//!
//! Provides the slice of the proptest API this workspace's property tests
//! use: the `proptest!` macro, `prop_assert*` / `prop_assume!`, `any::<T>()`,
//! numeric-range strategies, tuple strategies, `prop::collection::{vec,
//! hash_set}`, and `Strategy::prop_map`. Cases are generated from a
//! deterministic per-test RNG stream (override with `PROPTEST_SEED`);
//! failing inputs are printed, but there is **no shrinking** — failures
//! report the raw generated case.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject(String),
    /// `prop_assert*` failed.
    Fail(String),
}

/// Runner configuration (the `ProptestConfig` of real proptest).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Test-runner machinery namespace, mirroring `proptest::test_runner`.
pub mod test_runner {
    pub use super::Config;
}

/// A source of random values of some type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug + Clone;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (up to a retry cap).
    fn prop_filter<F>(self, why: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            why,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    why: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: predicate rejected 1000 candidates ({})",
            self.why
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a default "any value" strategy.
pub trait Arbitrary: std::fmt::Debug + Clone + Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        // Finite values across many magnitudes (no NaN/inf, like the
        // default proptest f64 strategy's finite core).
        let exp = rng.gen_range(-60i32..60);
        let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// `Vec` strategy with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            !len.is_empty(),
            "vec strategy needs a non-empty length range"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `HashSet` strategy with size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Set of `element` values with a size in `size`.
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        assert!(
            !size.is_empty(),
            "hash_set strategy needs a non-empty size range"
        );
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut out = std::collections::HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < n * 100 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use super::collection;
}

/// Derive the base RNG seed for one named property test.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse::<u64>() {
            return n;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if *lhs == *rhs {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Reject the current case (retried with fresh inputs, not counted a
/// failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Define property tests. Supports the subset of the real macro this
/// workspace uses: an optional leading `#![proptest_config(...)]`, then
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let strats = ($(&($strat),)*);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < cfg.cases {
                if rejected > cfg.cases.saturating_mul(20) + 1000 {
                    panic!(
                        "proptest {}: too many prop_assume rejections ({} passed, {} rejected)",
                        stringify!($name), passed, rejected
                    );
                }
                let ($($arg,)*) = $crate::Strategy::sample(&strats, &mut rng);
                let case_desc = format!("{:?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed after {} passing cases: {}\ninputs: {}",
                        stringify!($name), passed, msg, case_desc
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(xs in prop::collection::vec(0u32..5, 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_transforms(v in (0usize..4, 0usize..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(v < 34);
        }
    }

    #[test]
    fn hash_set_strategy_hits_requested_size() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let s = crate::collection::hash_set(crate::any::<u64>(), 2..12);
        for _ in 0..50 {
            let set = crate::Strategy::sample(&s, &mut rng);
            assert!((2..12).contains(&set.len()));
        }
    }
}
