//! Offline vendored `crossbeam` subset.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which postdates the
//! original crossbeam scoped-thread design). The API difference this shim
//! preserves: crossbeam's spawn closures receive `&Scope` as an argument
//! and `scope` returns a `Result` capturing child panics — std's versions
//! do neither, so thin wrappers restore both.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle allowing spawns that borrow from the enclosing stack
    /// frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. Unlike std, the closure receives the
        /// scope handle (crossbeam style), so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads
    /// are joined before this returns. A child panic propagates as an `Err`
    /// only in real crossbeam; std re-raises the panic at join, so callers'
    /// `.expect(...)` still reports the failure, just via the original
    /// panic payload instead of the wrapped one.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_children_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("scope failed");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = AtomicUsize::new(0);
        super::thread::scope(|s| {
            let flag = &flag;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    flag.store(7, Ordering::SeqCst);
                });
            });
        })
        .expect("scope failed");
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }
}
