//! Offline vendored `criterion` subset.
//!
//! A minimal wall-clock micro-benchmark harness exposing the criterion API
//! surface this workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!`). It times each routine over a short adaptive loop and
//! prints `ns/iter` — no statistics, plots, or HTML reports. When a bench
//! binary is invoked by `cargo test` (any `--test`-style argument present),
//! each routine runs exactly once as a smoke test so the suite stays fast.

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes decoded per iteration.
    BytesDecimal(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stub treats all
/// variants identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

fn smoke_mode() -> bool {
    // `cargo test` runs harness=false bench binaries with libtest-style
    // arguments; any argument at all means "not a real bench run".
    std::env::args().len() > 1
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    /// Mean nanoseconds per iteration measured by the last `iter*` call.
    last_ns: f64,
}

impl Bencher {
    fn run_loop<F: FnMut()>(&mut self, mut once: F) {
        if self.smoke {
            once();
            self.last_ns = 0.0;
            return;
        }
        // Warm up briefly, then time batches until ~20ms elapses.
        once();
        let budget = Duration::from_millis(20);
        let t0 = Instant::now();
        let mut iters: u64 = 0;
        while t0.elapsed() < budget && iters < 1_000_000 {
            once();
            iters += 1;
        }
        self.last_ns = t0.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Time `routine`, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run_loop(|| {
            black_box(routine());
        });
    }

    /// Time `routine` on inputs produced by `setup`; setup time is included
    /// in this stub (acceptable for smoke-grade numbers).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run_loop(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint (ignored by the stub's adaptive loop).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint (ignored by the stub's adaptive loop).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            smoke: smoke_mode(),
            last_ns: 0.0,
        };
        f(&mut b);
        if b.smoke {
            println!("bench {}/{}: ok (smoke)", self.name, label);
        } else {
            println!("bench {}/{}: {:.1} ns/iter", self.name, label, b.last_ns);
        }
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.label.clone(), |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id.label.clone(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.label.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Define a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u32;
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_each_pass() {
        let mut b = Bencher {
            smoke: true,
            last_ns: 0.0,
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 1);
    }
}
