//! Offline vendored subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of serde this workspace uses: `Serialize` / `Deserialize` traits
//! over a small self-describing [`Value`] data model, derive macros for
//! plain structs and enums (via the sibling `serde_derive` stub), and a JSON
//! text codec in [`json`] that the vendored `serde_json` re-exports.
//!
//! Differences from real serde, chosen deliberately for this workspace:
//!
//! * Serialization is two-step (`T -> Value -> text`) instead of visitor
//!   streaming — simpler, and fast enough for experiment telemetry.
//! * `Deserialize` has no `'de` lifetime; `&'static str` fields (used by
//!   `RunOutcome::algorithm`) deserialize by interning via `Box::leak`.
//! * Non-finite floats round-trip as bare `NaN` / `Infinity` /
//!   `-Infinity` tokens rather than degrading to `null`.
//! * Object keys keep insertion order, so encoded output is deterministic —
//!   a property the telemetry golden-trace tests rely on.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every `Serialize`/`Deserialize` impl
/// passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; never routed through f64).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object; missing fields read as `Null` (which
    /// lets `Option` fields tolerate omission).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(m) => m
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Construct from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Static-str fields (e.g. algorithm names) are few and short, so
        // interning by leak is an acceptable stub-level trade.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    a.get($idx).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

pub mod json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, -2i32, 3.5f64);
        assert_eq!(<(u8, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn missing_object_fields_read_as_null() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.field("a"), &Value::UInt(1));
        assert_eq!(v.field("b"), &Value::Null);
        assert_eq!(Option::<u64>::from_value(v.field("b")).unwrap(), None);
    }
}
