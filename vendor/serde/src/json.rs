//! JSON text codec over [`Value`](crate::Value).
//!
//! Output is deterministic: object keys keep insertion order and floats are
//! printed with Rust's shortest round-trip formatting. Non-finite floats are
//! written as the bare tokens `NaN` / `Infinity` / `-Infinity` (an accepted
//! JSON5-style extension) so that every in-memory value round-trips.

use crate::{Error, Value};

/// Encode a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

/// Encode a value as two-space-indented JSON.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value_pretty(v, &mut out, 0);
    out
}

fn write_value_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(out, depth + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep floats distinguishable from integers on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number bytes"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::Int(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the raw slice.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        parse(&to_string(v)).expect("round trip parse")
    }

    #[test]
    fn scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::UInt(u64::MAX),
            Value::Int(-42),
            Value::Float(1.25),
            Value::Str("he\"llo\nworld".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn large_u64_survives_exactly() {
        let v = Value::UInt(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        assert_eq!(
            round_trip(&Value::Float(f64::INFINITY)),
            Value::Float(f64::INFINITY)
        );
        assert_eq!(
            round_trip(&Value::Float(f64::NEG_INFINITY)),
            Value::Float(f64::NEG_INFINITY)
        );
        match round_trip(&Value::Float(f64::NAN)) {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn floats_stay_floats() {
        let v = Value::Float(3.0);
        assert_eq!(to_string(&v), "3.0");
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn nested_structures() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![Value::UInt(1), Value::Null])),
            (
                "inner".into(),
                Value::Object(vec![("s".into(), Value::Str("τ unicode".into()))]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
