//! Offline vendored `serde_json` subset: `to_string` / `from_str` over the
//! vendored `serde` crate's [`serde::Value`] data model and JSON codec.

pub use serde::{Error, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string(&value.to_value()))
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string_pretty(&value.to_value()))
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(s)?)
}

/// Parse JSON text into a loosely typed [`Value`].
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    serde::json::parse(s)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_via_serde_traits() {
        let v = vec![1u64, 2, 3];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
