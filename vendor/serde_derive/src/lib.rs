//! Offline vendored `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the item shapes this workspace uses —
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like. Serialization follows serde's externally
//! tagged enum convention over the vendored `serde::Value` data model.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline); generated impls are rendered as source
//! strings and re-parsed, which keeps the generator readable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip any `#[...]` / `#![...]` attributes (doc comments included).
    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Punct(p)) = self.peek() {
                        if p.as_char() == '!' {
                            self.pos += 1;
                        }
                    }
                    match self.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            self.pos += 1;
                        }
                        _ => return,
                    }
                }
                _ => return,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Consume tokens of a type expression until a top-level `,`, tracking
    /// `<`/`>` depth (parens/brackets arrive as atomic groups).
    fn skip_type_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident()?;
    match kind.as_str() {
        "struct" => {
            let name = c.expect_ident()?;
            check_no_generics(&c, &name)?;
            let shape = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("struct {name}: unexpected body {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let name = c.expect_ident()?;
            check_no_generics(&c, &name)?;
            match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let variants = parse_variants(g.stream())?;
                    Ok(Item::Enum { name, variants })
                }
                other => Err(format!("enum {name}: expected brace body, got {other:?}")),
            }
        }
        other => Err(format!("cannot derive for item kind {other:?}")),
    }
}

fn check_no_generics(c: &Cursor, name: &str) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type {name}"
            ));
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            return Ok(fields);
        }
        c.skip_visibility();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("field {name}: expected ':', got {other:?}")),
        }
        c.skip_type_until_comma();
        fields.push(name);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => return Ok(fields),
            other => return Err(format!("expected ',' between fields, got {other:?}")),
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attributes();
        if c.at_end() {
            return count;
        }
        c.skip_visibility();
        c.skip_type_until_comma();
        count += 1;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            _ => return count,
        }
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            return Ok(variants);
        }
        let name = c.expect_ident()?;
        let shape = match c.peek().cloned() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                c.pos += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                c.pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        c.skip_type_until_comma();
        variants.push(Variant { name, shape });
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => return Ok(variants),
            other => return Err(format!("expected ',' between variants, got {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => object_expr(fields.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push(format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let inner =
                            object_expr(fields.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                        arms.push(format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn object_expr(entries: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = entries
        .map(|(k, v)| format!("(String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn named_field_reads(type_label: &str, fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.field(\"{f}\"))\
                 .map_err(|e| ::serde::Error::custom(format!(\"{type_label}.{f}: {{e}}\")))?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Shape::Tuple(n) => {
                    let reads: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(a.get({i})\
                                 .ok_or_else(|| ::serde::Error::custom(\"{name}: tuple too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                         Ok({name}({}))",
                        reads.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let reads = named_field_reads(name, fields, "v");
                    format!(
                        "if v.as_object().is_none() {{\n\
                             return Err(::serde::Error::custom(\"{name}: expected object\"));\n\
                         }}\n\
                         Ok({name} {{\n{reads}\n}})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),")),
                    Shape::Tuple(1) => payload_arms.push(format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(a.get({i})\
                                     .ok_or_else(|| ::serde::Error::custom(\"{name}::{vn}: tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let a = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"{name}::{vn}: expected array\"))?;\n\
                                 Ok({name}::{vn}({}))\n\
                             }}",
                            reads.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let label = format!("{name}::{vn}");
                        let reads = named_field_reads(&label, fields, "inner");
                        payload_arms.push(format!("\"{vn}\" => Ok({name}::{vn} {{\n{reads}\n}}),"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             #[allow(unreachable_patterns)]\n\
                             return match s {{\n{units}\n\
                                 other => Err(::serde::Error::custom(format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                             }};\n\
                         }}\n\
                         if let Some(entries) = v.as_object() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (k, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 #[allow(unreachable_patterns)]\n\
                                 return match k.as_str() {{\n{payloads}\n\
                                     other => Err(::serde::Error::custom(format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                                 }};\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(\"{name}: expected externally tagged enum\"))\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    }
}
