//! Offline vendored `parking_lot` subset.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std mutex — possible
//! only after a panic while locked — is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics).

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on
    /// poisoning — the lock is recovered instead.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
