//! Offline vendored `bytes` subset.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: clones are reference-count bumps, as
//! with the real crate, though `from_static` copies once instead of
//! borrowing (the zero-copy static representation isn't worth the enum
//! dispatch for this workspace's tiny simulated payloads).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Buffer holding a copy of `bytes`.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Buffer wrapping `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data.as_ref() == *other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data.as_ref() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.data.as_ref() == other.as_bytes()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_comparison() {
        let b = Bytes::from_static(b"hi");
        assert_eq!(b.len(), 2);
        assert!(b == "hi");
        assert_eq!(&b[..], b"hi");
        let empty = Bytes::new();
        assert!(empty.is_empty());
        let cloned = b.clone();
        assert_eq!(cloned, b);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\n");
        assert_eq!(format!("{:?}", b), "b\"a\\n\"");
    }
}
