//! Fn-pointer profiling hook for the pool.
//!
//! The pool cannot depend on `mwu-core`, so it cannot open `mwu_core::prof`
//! spans itself. Instead it reports leaf durations through a process-global
//! hook installed once by the composing layer (the experiment harness wires
//! [`set_hook`] to `mwu_core::prof::record_external` behind `--profile`) —
//! the same inversion the trace pipeline uses to bridge `FaultEvent`s out of
//! `simnet`.
//!
//! Cost discipline mirrors the Observer contract: with no hook installed, or
//! with an installed hook whose `is_active` gate returns false, every
//! instrumented site pays one relaxed atomic load and reads no clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Pool activity reported through the hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// Delay between a job's submission and its first claimed chunk.
    QueueWait,
    /// A worker's full idle episode on the work condvar: from its first
    /// wait to the claim that put it back to work. Spurious or fruitless
    /// wakeups in between are coalesced into the same event, so one
    /// episode is never fragmented into many small spans.
    Park,
    /// One claimed chunk of an indexed job was executed.
    Chunk,
    /// A submitting call's full `run_indexed` occupancy: its own
    /// participation plus the wait for stragglers.
    Submit,
}

struct Hook {
    /// Cheap global gate consulted before any clock read.
    is_active: fn() -> bool,
    /// Receives (event, duration in nanoseconds) on the observing thread.
    sink: fn(PoolEvent, u64),
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static HOOK: OnceLock<Hook> = OnceLock::new();

/// Install the process-wide profiling hook. First call wins; later calls
/// are ignored (the pool outlives every harness scope, so rebinding would
/// race with running workers).
pub fn set_hook(is_active: fn() -> bool, sink: fn(PoolEvent, u64)) {
    if HOOK.set(Hook { is_active, sink }).is_ok() {
        INSTALLED.store(true, Ordering::Release);
    }
}

/// Is a hook installed *and* currently active? One relaxed load on the
/// common (inactive) path.
#[inline]
pub(crate) fn active() -> bool {
    INSTALLED.load(Ordering::Relaxed) && (HOOK.get().expect("installed").is_active)()
}

/// Report one event. Callers must have checked [`active`] — this keeps all
/// clock reads behind the gate.
#[inline]
pub(crate) fn emit(event: PoolEvent, duration_ns: u64) {
    if let Some(hook) = HOOK.get() {
        (hook.sink)(event, duration_ns);
    }
}
