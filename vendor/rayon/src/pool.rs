//! The global work-sharing thread pool behind the `par_iter` API.
//!
//! ## Design
//!
//! One lazily-initialized global pool of `N - 1` worker threads (the
//! submitting thread is the N-th participant). A parallel call packages its
//! work as an indexed job — "run `f(i)` for `i in 0..n`" — with a chunked
//! atomic next-index counter. The job is pushed onto a shared queue; every
//! worker (and the submitter) repeatedly claims the next chunk of indices
//! with a single `fetch_add` until the range is exhausted. This is *work
//! sharing*: threads pull chunks from the same counter, so an uneven item
//! cost profile balances automatically without per-thread deques.
//!
//! ## Determinism contract
//!
//! Chunk claiming is racy by design, but every result is written to the
//! output slot of its *input index*, and all reductions (collect / count /
//! sum) fold the ordered output buffer sequentially. Callers therefore see
//! results that are byte-identical to a sequential run, for every pool size
//! and every scheduling interleaving. See `docs/PARALLELISM.md`.
//!
//! ## Nested parallelism and deadlock freedom
//!
//! A chunk body may itself issue parallel calls (the Fig. 4 Monte-Carlo
//! curves nest `into_par_iter` inside `par_iter`). The submitting thread of
//! every job participates in that job before blocking, so an inner job
//! always has at least one thread driving it even when all workers are
//! busy; waiting threads hold no locks while they wait. Hence no cycle of
//! threads can wait on each other and the pool cannot deadlock.
//!
//! ## Panic semantics
//!
//! A panicking chunk poisons the job: remaining chunks are abandoned (the
//! index counter is fast-forwarded), the first panic payload is captured,
//! and the submitting call re-raises it after every in-flight chunk has
//! retired — so borrowed closures never outlive the call, even on panic.
//! Items not yet processed when a panic strikes are leaked, not dropped.

use crate::profile::{self, PoolEvent};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Requested pool size (0 = not configured; resolve from the environment).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// The global pool, spawned on first parallel call.
static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Per-thread participation cap for jobs submitted from this thread
    /// ([`with_max_threads`]); inherited by nested jobs.
    static MAX_THREADS: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Request `n` total threads (workers + the submitting thread) for the
/// global pool. Effective only before the pool's first use: returns `true`
/// if the request was applied (or the pool already runs at exactly `n`
/// threads), `false` if the pool was already initialized at another size.
///
/// The `--threads` CLI flag and `RAYON_NUM_THREADS` both land here;
/// an explicit `set_num_threads` call wins over the environment.
///
/// # Panics
/// Panics if `n == 0`.
pub fn set_num_threads(n: usize) -> bool {
    assert!(n > 0, "thread count must be positive");
    if let Some(pool) = POOL.get() {
        return pool.size == n;
    }
    REQUESTED.store(n, SeqCst);
    // A racing first parallel call may have initialized the pool between
    // the check and the store; report honestly.
    match POOL.get() {
        Some(pool) => pool.size == n,
        None => true,
    }
}

/// Total threads the pool runs with (initializing it if necessary):
/// the [`set_num_threads`] request, else `RAYON_NUM_THREADS`, else the
/// hardware parallelism.
pub fn current_num_threads() -> usize {
    pool().size
}

/// Run `f` with parallel calls capped at `cap` participating threads.
///
/// The cap is scoped to the current thread and is inherited by nested
/// parallel calls (workers adopt the cap of the job they execute), so a
/// `with_max_threads(1, ...)` region runs fully sequentially even on a
/// large pool. Used by the thread-count-invariance tests and `bench_grid`
/// to measure 1/2/4/8-thread behaviour inside one process.
///
/// # Panics
/// Panics if `cap == 0`.
pub fn with_max_threads<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    assert!(cap > 0, "thread cap must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MAX_THREADS.with(|c| c.replace(cap)));
    f()
}

struct Pool {
    /// Total participants: worker threads + 1 (the submitting thread).
    size: usize,
    shared: Arc<Shared>,
}

struct Shared {
    /// Jobs with unclaimed chunks. A job stays visible to every worker
    /// until its index range is exhausted (work *sharing*, not stealing).
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signalled when a new job is pushed.
    work_cv: Condvar,
}

/// Type-erased pointer to the submitting call's `f(i)` closure. The
/// lifetime is erased to `'static` for storage; safety comes from the
/// submitting call blocking until every chunk has retired.
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and outlives all uses (see above).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct Job {
    task: TaskPtr,
    /// Total items.
    n: usize,
    /// Items claimed per `fetch_add`.
    chunk: usize,
    /// Max concurrent participants (from the submitter's thread cap).
    max_active: usize,
    /// Next unclaimed item index (monotone; `>= n` means exhausted).
    next: AtomicUsize,
    /// Threads currently holding a participation slot.
    active: AtomicUsize,
    /// First panic payload from any chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion signal: `next >= n && active == 0`.
    done: Mutex<()>,
    done_cv: Condvar,
    /// Profiling state, set only when the hook was active at submission:
    /// the submission timestamp and a once-flag for the first chunk claim
    /// (queue-wait measurement).
    profiled: Option<(Instant, AtomicBool)>,
}

impl Job {
    fn finished(&self) -> bool {
        self.next.load(SeqCst) >= self.n && self.active.load(SeqCst) == 0
    }

    /// Claim a participation slot (bounded by `max_active`) and process
    /// chunks until the index range is exhausted. Returns immediately when
    /// the job is already fully claimed or at its participation cap.
    fn participate(&self) {
        loop {
            let cur = self.active.load(SeqCst);
            if cur >= self.max_active || self.next.load(SeqCst) >= self.n {
                return;
            }
            if self
                .active
                .compare_exchange(cur, cur + 1, SeqCst, SeqCst)
                .is_ok()
            {
                break;
            }
        }
        // Nested jobs submitted from chunk bodies inherit this job's cap.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                MAX_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(MAX_THREADS.with(|c| c.replace(self.max_active)));

        loop {
            let start = self.next.fetch_add(self.chunk, SeqCst);
            if start >= self.n {
                break;
            }
            if let Some((submitted, first_claim)) = &self.profiled {
                if !first_claim.swap(true, SeqCst) {
                    profile::emit(PoolEvent::QueueWait, submitted.elapsed().as_nanos() as u64);
                }
            }
            let chunk_t0 = self.profiled.as_ref().map(|_| Instant::now());
            let end = (start + self.chunk).min(self.n);
            // SAFETY: the submitting call blocks until `finished()`, so the
            // closure behind `task` is alive for the whole chunk.
            let f = unsafe { &*self.task.0 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for i in start..end {
                    f(i);
                }
            }));
            if let Some(t0) = chunk_t0 {
                profile::emit(PoolEvent::Chunk, t0.elapsed().as_nanos() as u64);
            }
            if let Err(payload) = result {
                // Poison: stop handing out chunks, keep the first payload.
                self.next.fetch_max(self.n, SeqCst);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }

        if self.active.fetch_sub(1, SeqCst) == 1 && self.next.load(SeqCst) >= self.n {
            // Last participant out wakes the submitting call. Taking the
            // lock orders the notify after the submitter's condition check.
            let _guard = self.done.lock().unwrap();
            self.done_cv.notify_all();
        }
    }
}

fn resolve_size() -> usize {
    let requested = REQUESTED.load(SeqCst);
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let size = resolve_size();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        });
        for w in 0..size.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("mwu-par-{w}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        Pool { size, shared }
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                // Exhausted jobs are dead weight; drop them here so the
                // queue never grows beyond the set of live jobs.
                queue.retain(|j| j.next.load(SeqCst) < j.n);
                let runnable = queue
                    .iter()
                    .find(|j| j.active.load(SeqCst) < j.max_active)
                    .cloned();
                match runnable {
                    Some(j) => break j,
                    None => {
                        let park_t0 = profile::active().then(Instant::now);
                        queue = shared.work_cv.wait(queue).unwrap();
                        if let Some(t0) = park_t0 {
                            profile::emit(PoolEvent::Park, t0.elapsed().as_nanos() as u64);
                        }
                    }
                }
            }
        };
        job.participate();
    }
}

/// Execute `f(i)` for every `i in 0..n` on the global pool, blocking until
/// all items have been processed. Runs inline (pure sequential, no pool
/// traffic) when the effective parallelism is 1 or `n < 2`. Re-raises the
/// first panic any item produced.
pub(crate) fn run_indexed(n: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let cap = MAX_THREADS.with(|c| c.get());
    if cap <= 1 {
        // Fully capped: don't even touch (or initialize) the pool.
        for i in 0..n {
            f(i);
        }
        return;
    }
    let pool = pool();
    let width = pool.size.min(cap);
    if width <= 1 || n < 2 {
        for i in 0..n {
            f(i);
        }
        return;
    }

    // ~4 chunks per participant balances uneven item costs against
    // fetch_add traffic; clamp to 1 so tiny inputs still parallelize.
    let chunk = (n / (width * 4)).max(1);
    // SAFETY: lifetime erasure; this call does not return until every
    // chunk has retired, so `f` outlives all uses.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let profiled = profile::active();
    let job = Arc::new(Job {
        task: TaskPtr(task as *const _),
        n,
        chunk,
        max_active: width,
        next: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
        profiled: profiled.then(|| (Instant::now(), AtomicBool::new(false))),
    });

    {
        let mut queue = pool.shared.queue.lock().unwrap();
        queue.push_back(Arc::clone(&job));
    }
    pool.shared.work_cv.notify_all();

    // The submitter is a participant too — this both shares the work and
    // guarantees progress when every worker is busy (nested jobs).
    let submit_t0 = profiled.then(Instant::now);
    job.participate();

    {
        let mut guard = job.done.lock().unwrap();
        while !job.finished() {
            guard = job.done_cv.wait(guard).unwrap();
        }
    }
    if let Some(t0) = submit_t0 {
        profile::emit(PoolEvent::Submit, t0.elapsed().as_nanos() as u64);
    }

    // The job may still sit in the queue (exhausted); remove it so the
    // queue holds no stale task pointers. Workers that already cloned the
    // Arc only ever read the atomics of an exhausted job, never the task.
    {
        let mut queue = pool.shared.queue.lock().unwrap();
        queue.retain(|j| !Arc::ptr_eq(j, &job));
    }

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}
