//! The global work-sharing thread pool behind the `par_iter` API.
//!
//! ## Design
//!
//! One lazily-initialized global pool of `N - 1` worker threads (the
//! submitting thread is the N-th participant). A parallel call packages its
//! work as an indexed job — "run `f(i)` for `i in 0..n`" — with a chunked
//! atomic next-index counter. The job is pushed onto a shared queue; every
//! worker (and the submitter) repeatedly claims the next chunk of indices
//! with a single `fetch_add` until the range is exhausted. This is *work
//! sharing*: threads pull chunks from the same counter, so an uneven item
//! cost profile balances automatically without per-thread deques.
//!
//! ## Chunk sizing
//!
//! Chunks are sized by *cost*, not by a fixed fraction of `n`. A caller
//! that knows its per-item cost supplies it via
//! [`crate::ParIter::with_cost_hint`]; the pool picks the chunk so one
//! claim amortizes roughly [`TARGET_CHUNK_NS`] of work (clamped so every
//! participant still gets at least one chunk). Without a hint the pool
//! starts from the old `n / (width·4)` guess, times the first completed
//! chunk, and resizes the remaining claims from that measurement. Jobs
//! whose *total* hinted cost is below [`MIN_PARALLEL_NS`] run inline —
//! tiny per-round kernels no longer pay a submission, a wake storm, and a
//! condvar park for microseconds of work. Chunk boundaries therefore vary
//! run to run, but outputs cannot observe them (see below).
//!
//! ## Claim fast-path
//!
//! The most recently submitted live job is also published in a mailbox
//! (`RwLock<Option<Arc<Job>>>`). A woken worker claims work through the
//! read lock — shared, never contended by other claimants — and only falls
//! back to the queue mutex when the mailbox job is finished or at its
//! participation cap. The queue mutex is thus off the steady-state claim
//! path entirely.
//!
//! ## Determinism contract
//!
//! Chunk claiming is racy by design, but every result is written to the
//! output slot of its *input index*, and all reductions (collect / count /
//! sum) fold the ordered output buffer sequentially. Callers therefore see
//! results that are byte-identical to a sequential run, for every pool
//! size, every chunk size, and every scheduling interleaving. See
//! `docs/PARALLELISM.md`.
//!
//! ## Nested parallelism and deadlock freedom
//!
//! A chunk body may itself issue parallel calls (the Fig. 4 Monte-Carlo
//! curves nest `into_par_iter` inside `par_iter`). The submitting thread of
//! every job participates in that job before blocking, so an inner job
//! always has at least one thread driving it even when all workers are
//! busy; waiting threads hold no locks while they wait. Hence no cycle of
//! threads can wait on each other and the pool cannot deadlock.
//!
//! ## Panic semantics
//!
//! A panicking chunk poisons the job: remaining chunks are abandoned (the
//! index counter is fast-forwarded), the first panic payload is captured,
//! and the submitting call re-raises it after every in-flight chunk has
//! retired — so borrowed closures never outlive the call, even on panic.
//! Items not yet processed when a panic strikes are leaked, not dropped.

use crate::profile::{self, PoolEvent};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Wall-clock work one claimed chunk should amortize. Big enough that the
/// `fetch_add` + bookkeeping per claim is noise, small enough that a width
/// of chunks still load-balances an uneven cost profile.
const TARGET_CHUNK_NS: u64 = 200_000;

/// Jobs whose total hinted cost falls below this run inline: the
/// submission handshake (queue push, wake, park) costs more than the work.
const MIN_PARALLEL_NS: u64 = 400_000;

/// Requested pool size (0 = not configured; resolve from the environment).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// The global pool, spawned on first parallel call.
static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Per-thread participation cap for jobs submitted from this thread
    /// ([`with_max_threads`]); inherited by nested jobs.
    static MAX_THREADS: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Request `n` total threads (workers + the submitting thread) for the
/// global pool. Effective only before the pool's first use: returns `true`
/// if the request was applied (or the pool already runs at exactly `n`
/// threads), `false` if the pool was already initialized at another size.
///
/// The `--threads` CLI flag and `RAYON_NUM_THREADS` both land here;
/// an explicit `set_num_threads` call wins over the environment.
///
/// # Panics
/// Panics if `n == 0`.
pub fn set_num_threads(n: usize) -> bool {
    assert!(n > 0, "thread count must be positive");
    if let Some(pool) = POOL.get() {
        return pool.size == n;
    }
    REQUESTED.store(n, SeqCst);
    // A racing first parallel call may have initialized the pool between
    // the check and the store; report honestly.
    match POOL.get() {
        Some(pool) => pool.size == n,
        None => true,
    }
}

/// Total threads the pool runs with (initializing it if necessary):
/// the [`set_num_threads`] request, else `RAYON_NUM_THREADS`, else the
/// hardware parallelism.
pub fn current_num_threads() -> usize {
    pool().size
}

/// Run `f` with parallel calls capped at `cap` participating threads.
///
/// The cap is scoped to the current thread and is inherited by nested
/// parallel calls (workers adopt the cap of the job they execute), so a
/// `with_max_threads(1, ...)` region runs fully sequentially even on a
/// large pool. Used by the thread-count-invariance tests and `bench_grid`
/// to measure 1/2/4/8-thread behaviour inside one process.
///
/// # Panics
/// Panics if `cap == 0`.
pub fn with_max_threads<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    assert!(cap > 0, "thread cap must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MAX_THREADS.with(|c| c.replace(cap)));
    f()
}

struct Pool {
    /// Total participants: worker threads + 1 (the submitting thread).
    size: usize,
    shared: Arc<Shared>,
}

struct Shared {
    /// Jobs with unclaimed chunks. A job stays visible to every worker
    /// until its index range is exhausted (work *sharing*, not stealing).
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signalled when a new job is pushed.
    work_cv: Condvar,
    /// The most recently submitted live job — the claim fast-path. Workers
    /// take the read lock only (shared among claimants), so claiming never
    /// contends on the queue mutex while a live job has unclaimed chunks.
    mailbox: RwLock<Option<Arc<Job>>>,
}

/// Type-erased pointer to the submitting call's `f(i)` closure. The
/// lifetime is erased to `'static` for storage; safety comes from the
/// submitting call blocking until every chunk has retired.
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and outlives all uses (see above).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct Job {
    task: TaskPtr,
    /// Total items.
    n: usize,
    /// Items claimed per `fetch_add`. Starts at the hint-derived (or
    /// guessed) size; the adaptive path rewrites it once after the first
    /// measured chunk. Claims are disjoint for *any* interleaving of
    /// loads and stores here, because each `fetch_add` reserves exactly
    /// the range it advanced over.
    chunk: AtomicUsize,
    /// Upper bound for adaptive resizing: `ceil(n / width)`, so every
    /// participant can still claim at least one chunk.
    chunk_cap: usize,
    /// Set once the chunk size is final (hint supplied, or first
    /// measurement taken). Until then participants time their chunk.
    sized: AtomicBool,
    /// Max concurrent participants (from the submitter's thread cap).
    max_active: usize,
    /// Next unclaimed item index (monotone; `>= n` means exhausted).
    next: AtomicUsize,
    /// Threads currently holding a participation slot.
    active: AtomicUsize,
    /// First panic payload from any chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion signal: `next >= n && active == 0`.
    done: Mutex<()>,
    done_cv: Condvar,
    /// Profiling state, set only when the hook was active at submission:
    /// the submission timestamp and a once-flag for the first chunk claim
    /// (queue-wait measurement).
    profiled: Option<(Instant, AtomicBool)>,
    /// Monotonic submission time, for clamping park episodes: a worker
    /// claiming this job was only *kept waiting by the pool* since the
    /// job existed, not since the worker first dozed off.
    submitted_ns: u64,
}

impl Job {
    fn finished(&self) -> bool {
        self.next.load(SeqCst) >= self.n && self.active.load(SeqCst) == 0
    }

    /// Can a new participant make progress on this job right now?
    fn claimable(&self) -> bool {
        self.next.load(SeqCst) < self.n && self.active.load(SeqCst) < self.max_active
    }

    /// Claim a participation slot (bounded by `max_active`) and process
    /// chunks until the index range is exhausted. Returns immediately when
    /// the job is already fully claimed or at its participation cap.
    fn participate(&self) {
        loop {
            let cur = self.active.load(SeqCst);
            if cur >= self.max_active || self.next.load(SeqCst) >= self.n {
                return;
            }
            if self
                .active
                .compare_exchange(cur, cur + 1, SeqCst, SeqCst)
                .is_ok()
            {
                break;
            }
        }
        // Nested jobs submitted from chunk bodies inherit this job's cap.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                MAX_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(MAX_THREADS.with(|c| c.replace(self.max_active)));

        loop {
            let chunk = self.chunk.load(SeqCst).max(1);
            let start = self.next.fetch_add(chunk, SeqCst);
            if start >= self.n {
                break;
            }
            if let Some((submitted, first_claim)) = &self.profiled {
                if !first_claim.swap(true, SeqCst) {
                    profile::emit(PoolEvent::QueueWait, submitted.elapsed().as_nanos() as u64);
                }
            }
            // Time the chunk when profiling, and also while the adaptive
            // sizer still needs its first measurement.
            let measuring = !self.sized.load(SeqCst);
            let chunk_t0 = (measuring || self.profiled.is_some()).then(Instant::now);
            let end = (start + chunk).min(self.n);
            // SAFETY: the submitting call blocks until `finished()`, so the
            // closure behind `task` is alive for the whole chunk.
            let f = unsafe { &*self.task.0 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for i in start..end {
                    f(i);
                }
            }));
            if let Some(t0) = chunk_t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                if self.profiled.is_some() {
                    profile::emit(PoolEvent::Chunk, ns);
                }
                if measuring && !self.sized.swap(true, SeqCst) {
                    self.resize_from_measurement(ns, end - start);
                }
            }
            if let Err(payload) = result {
                // Poison: stop handing out chunks, keep the first payload.
                self.next.fetch_max(self.n, SeqCst);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }

        if self.active.fetch_sub(1, SeqCst) == 1 && self.next.load(SeqCst) >= self.n {
            // Last participant out wakes the submitting call. Taking the
            // lock orders the notify after the submitter's condition check.
            let _guard = self.done.lock().unwrap();
            self.done_cv.notify_all();
        }
    }

    /// Adaptive sizing: from the first measured chunk, pick the chunk that
    /// amortizes [`TARGET_CHUNK_NS`] per claim. Racing claims that still
    /// read the probe size merely produce one more small chunk — claims
    /// stay disjoint regardless.
    fn resize_from_measurement(&self, chunk_ns: u64, items: usize) {
        let per_item = (chunk_ns / items.max(1) as u64).max(1);
        let ideal = (TARGET_CHUNK_NS / per_item).max(1);
        let sized = ideal.min(self.chunk_cap as u64) as usize;
        self.chunk.store(sized.max(1), SeqCst);
    }
}

/// Chunk size for a job of `n` items across `width` participants.
///
/// With a cost hint, one chunk ≈ [`TARGET_CHUNK_NS`] of work; without one,
/// the classic `n / (width·4)` probe that the adaptive path refines after
/// its first measurement. Both are clamped to `[1, ceil(n / width)]` so
/// tiny inputs still parallelize and every participant can claim work.
fn initial_chunk(n: usize, width: usize, cost_hint_ns: u64) -> (usize, bool) {
    let cap = n.div_ceil(width);
    if cost_hint_ns > 0 {
        let ideal = (TARGET_CHUNK_NS / cost_hint_ns).max(1);
        (ideal.min(cap as u64) as usize, true)
    } else {
        ((n / (width * 4)).clamp(1, cap), false)
    }
}

fn resolve_size() -> usize {
    let requested = REQUESTED.load(SeqCst);
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let size = resolve_size();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            mailbox: RwLock::new(None),
        });
        for w in 0..size.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("mwu-par-{w}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        Pool { size, shared }
    })
}

/// Monotonic nanoseconds since the first call — the production clock of
/// [`ParkTracker`] (fn-pointer clocks cannot capture an `Instant`).
fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Coalesces a worker's idle time into one `Park` span per *episode*: from
/// the first condvar wait until the worker actually claims a job. Spurious
/// or fruitless wakeups (the condvar fired but another thread drained the
/// job, or the job is at its participation cap) neither end the episode
/// nor emit a span of their own — previously each wakeup emitted one span,
/// fragmenting and inflating park attribution under capped sweeps where
/// most workers wake on every submission and can never participate.
///
/// The emitted duration is additionally clamped to the claimed job's
/// availability window: an episode that began while the pool was quiescent
/// (the application between parallel sections) only charges the stretch
/// *after* the job was submitted. Park attribution therefore measures
/// "work existed and this thread could not get to it", never plain
/// application-sequential idle time.
///
/// The gate/sink/clock are injected so the episode logic is unit-testable
/// with a counting clock (see the tests below); production wiring is
/// [`ParkTracker::new`].
struct ParkTracker {
    gate: fn() -> bool,
    sink: fn(PoolEvent, u64),
    clock: fn() -> u64,
    /// Clock reading at the first wait of the open episode.
    episode_start: Option<u64>,
}

impl ParkTracker {
    fn new() -> Self {
        Self::with_hooks(profile::active, profile::emit, monotonic_ns)
    }

    fn with_hooks(gate: fn() -> bool, sink: fn(PoolEvent, u64), clock: fn() -> u64) -> Self {
        Self {
            gate,
            sink,
            clock,
            episode_start: None,
        }
    }

    /// The worker is about to block on the work condvar. Starts an episode
    /// unless one is already open (a wakeup that found nothing runnable).
    fn on_wait_start(&mut self) {
        if self.episode_start.is_none() && (self.gate)() {
            self.episode_start = Some((self.clock)());
        }
    }

    /// The worker claimed a runnable job: close the episode, if any, and
    /// emit exactly one `Park` span covering the idle stretch, clamped to
    /// begin no earlier than `available_since` (the job's submission).
    fn on_claim(&mut self, available_since: u64) {
        if let Some(t0) = self.episode_start.take() {
            let start = t0.max(available_since);
            (self.sink)(PoolEvent::Park, ((self.clock)()).saturating_sub(start));
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut park = ParkTracker::new();
    loop {
        // Claim fast-path: the latest live job, through the shared read
        // lock only. Misses (no mailbox job, finished, or at cap) fall
        // back to the queue scan below.
        let fast = shared.mailbox.read().unwrap().clone();
        if let Some(job) = fast {
            if job.claimable() {
                park.on_claim(job.submitted_ns);
                job.participate();
                continue;
            }
        }
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                // Exhausted jobs are dead weight; drop them here so the
                // queue never grows beyond the set of live jobs.
                queue.retain(|j| j.next.load(SeqCst) < j.n);
                let runnable = queue.iter().find(|j| j.claimable()).cloned();
                match runnable {
                    Some(j) => break j,
                    None => {
                        park.on_wait_start();
                        queue = shared.work_cv.wait(queue).unwrap();
                    }
                }
            }
        };
        park.on_claim(job.submitted_ns);
        job.participate();
    }
}

/// Sequential execution of a job that never reaches the pool. When
/// profiling is on, it still emits the pool's phase set (`QueueWait`,
/// `Chunk`, `Submit`) so a 1-thread sweep's profile is structurally
/// comparable to a parallel sweep's — previously the fallback paths
/// emitted nothing and cross-thread-count profiles were apples-to-oranges.
/// With profiling off this is the bare loop: no clock reads, no emission.
fn run_inline(n: usize, f: &(dyn Fn(usize) + Sync)) {
    if !profile::active() {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let t0 = Instant::now();
    // Inline execution never queues, so the queue-wait is zero by
    // construction; emitting it keeps the phase *set* identical.
    profile::emit(PoolEvent::QueueWait, 0);
    for i in 0..n {
        f(i);
    }
    let ns = t0.elapsed().as_nanos() as u64;
    profile::emit(PoolEvent::Chunk, ns);
    profile::emit(PoolEvent::Submit, t0.elapsed().as_nanos() as u64);
}

/// Execute `f(i)` for every `i in 0..n` on the global pool, blocking until
/// all items have been processed. Runs inline (pure sequential, no pool
/// traffic) when the effective parallelism is 1 or `n < 2`. Re-raises the
/// first panic any item produced.
pub(crate) fn run_indexed(n: usize, f: &(dyn Fn(usize) + Sync)) {
    run_indexed_with_cost(n, 0, f)
}

/// [`run_indexed`] with a caller-supplied per-item cost hint in
/// nanoseconds (`0` = unknown; measure and adapt). The hint sizes chunks
/// up front and routes jobs too small to amortize a pool round-trip to the
/// inline path.
pub(crate) fn run_indexed_with_cost(n: usize, cost_hint_ns: u64, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let cap = MAX_THREADS.with(|c| c.get());
    if cap <= 1 {
        // Fully capped: don't even touch (or initialize) the pool.
        run_inline(n, f);
        return;
    }
    if cost_hint_ns > 0 && (n as u64).saturating_mul(cost_hint_ns) < MIN_PARALLEL_NS {
        // The whole job is cheaper than the submission handshake.
        run_inline(n, f);
        return;
    }
    let pool = pool();
    let width = pool.size.min(cap);
    if width <= 1 || n < 2 {
        run_inline(n, f);
        return;
    }

    let (chunk, sized) = initial_chunk(n, width, cost_hint_ns);
    // SAFETY: lifetime erasure; this call does not return until every
    // chunk has retired, so `f` outlives all uses.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let profiled = profile::active();
    let job = Arc::new(Job {
        task: TaskPtr(task as *const _),
        n,
        chunk: AtomicUsize::new(chunk),
        chunk_cap: n.div_ceil(width),
        sized: AtomicBool::new(sized),
        max_active: width,
        next: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
        profiled: profiled.then(|| (Instant::now(), AtomicBool::new(false))),
        submitted_ns: monotonic_ns(),
    });

    {
        let mut queue = pool.shared.queue.lock().unwrap();
        queue.push_back(Arc::clone(&job));
    }
    *pool.shared.mailbox.write().unwrap() = Some(Arc::clone(&job));
    // Wake only as many workers as the job can use: `notify_all` on every
    // submission stampedes the whole pool for jobs with a handful of
    // chunks (most wakeups then find nothing claimable and re-park).
    let useful = n.div_ceil(chunk).min(width).saturating_sub(1);
    for _ in 0..useful {
        pool.shared.work_cv.notify_one();
    }

    // The submitter is a participant too — this both shares the work and
    // guarantees progress when every worker is busy (nested jobs).
    let submit_t0 = profiled.then(Instant::now);
    job.participate();

    {
        let mut guard = job.done.lock().unwrap();
        while !job.finished() {
            guard = job.done_cv.wait(guard).unwrap();
        }
    }
    if let Some(t0) = submit_t0 {
        profile::emit(PoolEvent::Submit, t0.elapsed().as_nanos() as u64);
    }

    // Retire the job from the mailbox (a later submission may already have
    // replaced it) and the queue, so neither holds stale task pointers.
    // Workers that already cloned the Arc only ever read the atomics of an
    // exhausted job, never the task.
    {
        let mut mailbox = pool.shared.mailbox.write().unwrap();
        if mailbox.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
            *mailbox = None;
        }
    }
    {
        let mut queue = pool.shared.queue.lock().unwrap();
        queue.retain(|j| !Arc::ptr_eq(j, &job));
    }

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Counting clock: each read advances one tick.
    fn counting_clock() -> u64 {
        static TICKS: AtomicU64 = AtomicU64::new(0);
        TICKS.fetch_add(1, SeqCst)
    }

    static PARK_SPANS: AtomicUsize = AtomicUsize::new(0);
    static PARK_NS: AtomicU64 = AtomicU64::new(0);

    fn recording_sink(event: PoolEvent, ns: u64) {
        if event == PoolEvent::Park {
            PARK_SPANS.fetch_add(1, SeqCst);
            PARK_NS.fetch_add(ns, SeqCst);
        }
    }

    #[test]
    fn park_episode_emits_one_span_across_spurious_wakeups() {
        let mut tracker = ParkTracker::with_hooks(|| true, recording_sink, counting_clock);
        PARK_SPANS.store(0, SeqCst);
        PARK_NS.store(0, SeqCst);

        // One episode: first wait, three fruitless wakeups re-entering the
        // wait, then a successful claim. Exactly one span.
        tracker.on_wait_start();
        tracker.on_wait_start();
        tracker.on_wait_start();
        tracker.on_wait_start();
        tracker.on_claim(0);
        assert_eq!(PARK_SPANS.load(SeqCst), 1, "one span per park episode");
        // Counting clock: start read at tick 0, close read at tick 1 (the
        // fruitless wakeups read no clock at all).
        assert_eq!(PARK_NS.load(SeqCst), 1);

        // A claim without an open episode (fast-path hit while never
        // having parked) emits nothing.
        tracker.on_claim(0);
        assert_eq!(PARK_SPANS.load(SeqCst), 1);

        // A second full episode emits a second span.
        tracker.on_wait_start();
        tracker.on_claim(0);
        assert_eq!(PARK_SPANS.load(SeqCst), 2);
    }

    #[test]
    fn park_episode_is_clamped_to_job_availability() {
        let mut tracker = ParkTracker::with_hooks(|| true, recording_sink, counting_clock);
        PARK_SPANS.store(0, SeqCst);
        PARK_NS.store(0, SeqCst);

        // Episode opens first; the claimed job was submitted far later.
        // Only the post-submission stretch counts, so the clamped span
        // saturates to zero.
        tracker.on_wait_start();
        tracker.on_claim(u64::MAX - 1);
        assert_eq!(PARK_SPANS.load(SeqCst), 1);
        assert_eq!(PARK_NS.load(SeqCst), 0, "pre-submission idle not charged");

        // A job submitted before the episode opened charges the full wait.
        tracker.on_wait_start();
        tracker.on_claim(0);
        assert_eq!(PARK_SPANS.load(SeqCst), 2);
        assert_eq!(PARK_NS.load(SeqCst), 1);
    }

    #[test]
    fn park_tracker_is_inert_when_gate_is_closed() {
        let mut tracker = ParkTracker::with_hooks(|| false, recording_sink, counting_clock);
        let before = PARK_SPANS.load(SeqCst);
        tracker.on_wait_start();
        tracker.on_claim(0);
        assert_eq!(PARK_SPANS.load(SeqCst), before);
    }

    #[test]
    fn initial_chunk_honors_cost_hints_and_clamps() {
        // Unknown cost: the classic probe guess, clamped to [1, ceil(n/w)].
        assert_eq!(initial_chunk(1024, 4, 0), (64, false));
        assert_eq!(initial_chunk(3, 4, 0), (1, false));
        // Cheap items: one chunk ≈ TARGET_CHUNK_NS of work...
        assert_eq!(initial_chunk(100_000, 4, 100), (2_000, true));
        // ...but never fewer than one chunk per participant.
        assert_eq!(initial_chunk(1_000, 4, 1), (250, true));
        // Expensive items: single-item chunks.
        assert_eq!(initial_chunk(64, 4, u64::MAX), (1, true));
        assert_eq!(initial_chunk(64, 4, TARGET_CHUNK_NS * 10), (1, true));
    }

    #[test]
    fn adaptive_resize_targets_chunk_budget() {
        let noop: &'static (dyn Fn(usize) + Sync) = &|_| {};
        let job = Job {
            task: TaskPtr(noop as *const _),
            n: 10_000,
            chunk: AtomicUsize::new(10),
            chunk_cap: 2_500,
            sized: AtomicBool::new(false),
            max_active: 4,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            profiled: None,
            submitted_ns: 0,
        };
        // 10 items took 10µs → 1µs/item → 200 items per 200µs chunk.
        job.resize_from_measurement(10_000, 10);
        assert_eq!(job.chunk.load(SeqCst), 200);
        // A glacial first chunk clamps to 1, never 0.
        job.resize_from_measurement(u64::MAX / 2, 1);
        assert_eq!(job.chunk.load(SeqCst), 1);
        // A free first chunk clamps to the per-participant cap.
        job.resize_from_measurement(0, 1_000);
        assert_eq!(job.chunk.load(SeqCst), 2_500);
    }
}
