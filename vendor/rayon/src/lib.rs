//! Offline vendored `rayon` with a real work-sharing thread pool.
//!
//! The build environment has no crates.io access, so this crate implements
//! the `par_iter()` / `into_par_iter()` API surface this workspace uses on
//! top of a std::thread pool of its own (see [`mod@pool`] for the design):
//! a lazily-initialized global pool whose threads pull chunks of the input
//! range from a shared atomic index counter. Work really runs concurrently
//! — the experiment grid, the MWRepair probe loop and the precompute phase
//! all scale with the thread count.
//!
//! ## Determinism contract
//!
//! Every result is written to the output slot of its *input* index and all
//! reductions fold that ordered buffer sequentially, so `map`, `filter`,
//! `collect`, `count` and `sum` return results byte-identical to a
//! sequential run at any thread count. Callers additionally derive
//! per-item RNG streams, so nothing in this workspace can observe the
//! scheduling. `docs/PARALLELISM.md` spells out the full contract.
//!
//! ## Knobs
//!
//! * [`set_num_threads`] — pool size; the `--threads` CLI flag lands here.
//! * `RAYON_NUM_THREADS` — environment fallback, as in real rayon.
//! * [`with_max_threads`] — scoped participation cap (testing / benching
//!   several thread counts inside one process).
//! * [`ParIter::with_cost_hint`] — approximate per-item cost in
//!   nanoseconds; sizes pool chunks and routes too-small jobs inline.
//!   Scheduling only — results are identical for every value.
//!
//! ## Differences from real rayon
//!
//! * The adapter set is exactly what this workspace needs: `map`, `filter`,
//!   `enumerate`, `copied`, `for_each`, `collect`, `count`, `sum`, plus
//!   [`join`]. Items are materialized into a `Vec` up front rather than
//!   split lazily.
//! * [`ParIter::enumerate`] numbers *source* items; apply it before
//!   `filter` (as every call site here does) and it matches rayon.
//! * Panics in item closures poison the job and re-raise in the caller;
//!   items not yet processed are leaked rather than dropped.

mod pool;
pub mod profile;

pub use pool::{current_num_threads, set_num_threads, with_max_threads};
pub use profile::{set_hook as set_profile_hook, PoolEvent};

/// A parallel pipeline over an eagerly-collected item vector: each source
/// item of type `T` flows through a fused transform producing `Option<U>`
/// (`None` = filtered out). Terminal operations run the transform on the
/// global pool with input-order results.
pub struct ParIter<'f, T, U> {
    items: Vec<T>,
    op: Box<dyn Fn(T) -> Option<U> + Sync + 'f>,
    /// Caller-supplied per-item cost in nanoseconds (0 = unknown); sizes
    /// pool chunks and routes too-small jobs inline. See
    /// [`Self::with_cost_hint`].
    cost_hint_ns: u64,
}

impl<'f, T: Send + 'f> ParIter<'f, T, T> {
    fn from_items(items: Vec<T>) -> Self {
        ParIter {
            items,
            op: Box::new(Some),
            cost_hint_ns: 0,
        }
    }
}

impl<'f, T: Send + 'f, U: Send + 'f> ParIter<'f, T, U> {
    /// Transform each surviving item with `f`.
    pub fn map<V, F>(self, f: F) -> ParIter<'f, T, V>
    where
        F: Fn(U) -> V + Sync + 'f,
        V: Send + 'f,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: Box::new(move |t| op(t).map(&f)),
            cost_hint_ns: self.cost_hint_ns,
        }
    }

    /// Declare the approximate cost of one item, in nanoseconds of work
    /// (`0` = unknown, the default: the pool measures its first chunk and
    /// adapts). The hint lets the pool size chunks so each claim amortizes
    /// a fixed time budget, and run jobs whose *total* cost cannot amortize
    /// a submission handshake inline instead. Purely a scheduling hint:
    /// results are byte-identical for every value.
    pub fn with_cost_hint(mut self, ns_per_item: u64) -> Self {
        self.cost_hint_ns = ns_per_item;
        self
    }

    /// Keep only items for which `pred` holds. Relative order is preserved.
    pub fn filter<P>(self, pred: P) -> ParIter<'f, T, U>
    where
        P: Fn(&U) -> bool + Sync + 'f,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: Box::new(move |t| op(t).filter(|u| pred(u))),
            cost_hint_ns: self.cost_hint_ns,
        }
    }

    /// Pair each item with its *source* index. Matches rayon's `enumerate`
    /// when applied before any `filter` (as all call sites here do).
    pub fn enumerate(self) -> ParIter<'f, (usize, T), (usize, U)>
    where
        (usize, T): Send,
        (usize, U): Send,
    {
        let op = self.op;
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            op: Box::new(move |(i, t): (usize, T)| op(t).map(|u| (i, u))),
            cost_hint_ns: self.cost_hint_ns,
        }
    }

    /// Run the pipeline on the pool; slot `i` holds item `i`'s outcome.
    fn run(self) -> Vec<Option<U>> {
        let n = self.items.len();
        let cost_hint_ns = self.cost_hint_ns;
        let op = self.op;
        if n < 2 {
            return self.items.into_iter().map(op).collect();
        }

        // Items are moved out of the buffer exactly once each (disjoint
        // indices), results written to preallocated slots; panics leave
        // both buffers leaked-but-valid (no double drop, no dangling read).
        struct SendConstPtr<P>(*const P);
        unsafe impl<P> Send for SendConstPtr<P> {}
        unsafe impl<P> Sync for SendConstPtr<P> {}
        impl<P> SendConstPtr<P> {
            // Method receivers force the closure below to capture the whole
            // wrapper (edition-2021 disjoint capture would otherwise grab
            // the non-Sync pointer field directly).
            fn get(&self) -> *const P {
                self.0
            }
        }
        struct SendMutPtr<P>(*mut P);
        unsafe impl<P> Send for SendMutPtr<P> {}
        unsafe impl<P> Sync for SendMutPtr<P> {}
        impl<P> SendMutPtr<P> {
            fn get(&self) -> *mut P {
                self.0
            }
        }

        let items = std::mem::ManuallyDrop::new(self.items);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        let src = SendConstPtr(items.as_ptr());
        let dst = SendMutPtr(out.as_mut_ptr());
        let task = |i: usize| {
            // SAFETY: each index is claimed exactly once; both pointers are
            // valid for `n` slots for the whole blocking call.
            unsafe {
                let item = std::ptr::read(src.get().add(i));
                std::ptr::write(dst.get().add(i), op(item));
            }
        };
        pool::run_indexed_with_cost(n, cost_hint_ns, &task);

        // Every element was moved out: free the buffer without dropping.
        let mut items = std::mem::ManuallyDrop::into_inner(items);
        // SAFETY: all `n` elements were consumed by `ptr::read`.
        unsafe { items.set_len(0) };
        // SAFETY: all `n` slots were initialized by `ptr::write`.
        unsafe { out.set_len(n) };
        out
    }

    /// Collect surviving items, in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        self.run().into_iter().flatten().collect()
    }

    /// Number of surviving items.
    pub fn count(self) -> usize {
        self.run().into_iter().flatten().count()
    }

    /// Sum surviving items, folding in input order (thread-count-invariant
    /// even for floating point).
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        self.run().into_iter().flatten().sum()
    }

    /// Run `f` on every surviving item (unordered side effects; `f` must be
    /// `Sync` since items execute concurrently).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(U) + Sync + 'f,
    {
        self.map(f).run();
    }
}

impl<'f, 'x: 'f, T: Send + 'f, U: Copy + Send + 'x> ParIter<'f, T, &'x U> {
    /// Copy referenced items (mirrors `Iterator::copied`).
    pub fn copied(self) -> ParIter<'f, T, U> {
        let op = self.op;
        ParIter {
            items: self.items,
            op: Box::new(move |t| op(t).copied()),
            cost_hint_ns: self.cost_hint_ns,
        }
    }
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send + 'static;

    /// Start a parallel pipeline over this collection's items.
    fn into_par_iter(self) -> ParIter<'static, Self::Item, Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send + 'static,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<'static, I::Item, I::Item> {
        ParIter::from_items(self.into_iter().collect())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;

    /// Start a parallel pipeline over references to this collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item, Self::Item>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
    <&'a T as IntoIterator>::Item: Send,
{
    type Item = <&'a T as IntoIterator>::Item;

    fn par_iter(&'a self) -> ParIter<'a, Self::Item, Self::Item> {
        ParIter::from_items(self.into_iter().collect())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The element type (a mutable reference).
    type Item: Send + 'a;

    /// Start a parallel pipeline over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIter<'a, Self::Item, Self::Item>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
    <&'a mut T as IntoIterator>::Item: Send,
{
    type Item = <&'a mut T as IntoIterator>::Item;

    fn par_iter_mut(&'a mut self) -> ParIter<'a, Self::Item, Self::Item> {
        ParIter::from_items(self.into_iter().collect())
    }
}

/// Run two closures in parallel and return both results, mirroring
/// `rayon::join`. `b` runs on a pool worker when one is free; otherwise the
/// calling thread runs both (never blocked on an unclaimed closure, so
/// nested joins cannot deadlock).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    use std::sync::Mutex;
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    let task = |i: usize| {
        if i == 0 {
            let f = fa.lock().unwrap().take().expect("join side runs once");
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = fb.lock().unwrap().take().expect("join side runs once");
            *rb.lock().unwrap() = Some(f());
        }
    };
    pool::run_indexed(2, &task);
    (
        ra.into_inner().unwrap().expect("join side a completed"),
        rb.into_inner().unwrap().expect("join side b completed"),
    )
}

/// The common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "two");
        assert_eq!((a, b), (1, "two"));
    }

    #[test]
    fn order_is_preserved_on_large_inputs() {
        let n = 10_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_filter_count_compose() {
        let xs: Vec<u32> = (0..1000).collect();
        let odd_sum: u32 = xs.par_iter().copied().filter(|x| x % 2 == 1).sum();
        assert_eq!(odd_sum, (0..1000).filter(|x| x % 2 == 1).sum::<u32>());
        let pairs: Vec<(usize, u32)> = xs
            .par_iter()
            .enumerate()
            .map(|(i, &x)| (i, x + 1))
            .collect();
        assert!(pairs.iter().all(|&(i, x)| x == i as u32 + 1));
    }

    #[test]
    fn nested_parallelism_terminates_and_is_correct() {
        let totals: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|outer| {
                (0..100usize)
                    .into_par_iter()
                    .filter(|i| i % (outer + 1) == 0)
                    .count()
            })
            .collect();
        let expected: Vec<usize> = (0..8usize)
            .map(|outer| (0..100usize).filter(|i| i % (outer + 1) == 0).count())
            .collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let r = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..256usize)
                .into_par_iter()
                .map(|i| if i == 137 { panic!("boom") } else { i })
                .collect();
        });
        assert!(r.is_err());
    }

    #[test]
    fn with_max_threads_is_scoped_and_deterministic() {
        let seq: Vec<u64> =
            super::with_max_threads(1, || (0..512u64).into_par_iter().map(|i| i * i).collect());
        let par: Vec<u64> = (0..512u64).into_par_iter().map(|i| i * i).collect();
        assert_eq!(seq, par);
    }
}
