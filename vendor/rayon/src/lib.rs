//! Offline vendored `rayon` shim.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! `par_iter()` / `into_par_iter()` call sites compiling by handing back
//! **sequential** standard-library iterators. Every caller in this
//! workspace already derives per-item RNG streams so results are
//! scheduling-independent; running the items sequentially changes wall
//! time, never results. Swapping the real rayon back in later is a
//! one-line `Cargo.toml` change.

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// "Parallel" iteration — sequential in this shim.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: 'a;

    /// "Parallel" iteration over references — sequential in this shim.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Iter = <&'a T as IntoIterator>::IntoIter;
    type Item = <&'a T as IntoIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a mutable reference).
    type Item: 'a;

    /// "Parallel" iteration over mutable references — sequential here.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
{
    type Iter = <&'a mut T as IntoIterator>::IntoIter;
    type Item = <&'a mut T as IntoIterator>::Item;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Run two closures "in parallel" (sequentially here) and return both
/// results, mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "two");
        assert_eq!((a, b), (1, "two"));
    }
}
