//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` features the workspace actually uses are
//! reimplemented here with the same algorithms `rand` 0.8 uses on 64-bit
//! targets: `SmallRng` is xoshiro256++ and `seed_from_u64` fills the seed
//! with the PCG32 stream rand-core uses, so seeded streams match upstream.
//!
//! Only the surface this workspace needs is provided: `RngCore`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `rngs::SmallRng`.

/// Low-level generator interface (matches `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generator interface (matches `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG32 stream
    /// `rand_core` 0.6 uses, so streams match upstream `rand` 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let len = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly-at-"standard" from raw bits (the subset of
/// `rand::distributions::Standard` this workspace uses via `Rng::gen`).
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit precision in [0, 1), as rand's Standard does for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Uniform `u64` in `[0, n)` via Lemire's widening-multiply rejection.
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let wide = (rng.next_u64() as u128) * (n as u128);
        let lo = wide as u64;
        if lo >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every value is fair.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        start + (end - start) * u
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        start + (end - start) * u
    }
}

/// High-level convenience methods (matches the used subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli(p) draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++, exactly as `rand` 0.8 uses for
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Snapshot the full 256-bit generator state, for checkpointing.
        /// Restoring via [`SmallRng::from_state`] continues the stream
        /// exactly where the snapshot was taken.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`SmallRng::state`] snapshot.
        ///
        /// # Panics
        /// Panics on the all-zero state, which xoshiro cannot leave (and
        /// which no reachable generator state can produce).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256++ state must be non-zero");
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

/// Distribution-style helpers (minimal placeholder module so `use
/// rand::distributions::...` style imports could be added later).
pub mod distributions {}

/// Prelude-style re-exports matching `rand`'s common imports.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let snap = a.state();
        let upcoming: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = SmallRng::from_state(snap);
        let resumed: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(upcoming, resumed);
    }

    #[test]
    #[should_panic]
    fn zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bin count {c} far from 1000");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
