//! Integration-test support crate.
//!
//! The tests themselves live in `tests/tests/*.rs` and exercise the public
//! APIs of `mwu-core`, `simnet`, `mwu-datasets`, `apr-sim`, `mwrepair` and
//! `apr-baselines` **together** — the composition paths a downstream user
//! actually takes. This library only hosts a couple of shared helpers.

use mwu_core::run::RunConfig;

/// A short-budget run configuration for integration tests.
pub fn test_run_config(seed: u64) -> RunConfig {
    RunConfig {
        max_iterations: 5_000,
        seed,
        run_past_convergence: false,
    }
}

/// Deterministic seed stream for test replicates.
pub fn test_seed(label: u64, rep: u64) -> u64 {
    mwu_core::rng::mix(&[0x7E57_7E57, label, rep])
}
