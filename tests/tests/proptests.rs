//! Property-based tests over the core data structures and invariants.

use apr_sim::interaction::InteractionModel;
use apr_sim::mutation::{MutOp, Mutation, MutationId};
use mwu_core::slate::{decompose_into_slates, systematic_sample};
use mwu_core::stats::{Counter, Histogram, RunningStats};
use mwu_core::weights::WeightVector;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn positive_weights(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-6f64..1e6, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- WeightVector ---

    #[test]
    fn weights_always_normalize(ws in positive_weights(64)) {
        let w = WeightVector::from_weights(&ws);
        let sum: f64 = w.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(w.probabilities().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn multiplicative_updates_preserve_simplex(
        ws in positive_weights(32),
        factors in prop::collection::vec(0.0f64..4.0, 1..32),
    ) {
        let mut w = WeightVector::from_weights(&ws);
        let k = w.len();
        w.scale_all(|i| factors[i % factors.len()]);
        let sum: f64 = w.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(w.len(), k);
    }

    #[test]
    fn capping_never_exceeds_cap_and_stays_on_simplex(
        ws in positive_weights(48),
        denom in 1usize..8,
    ) {
        let w = WeightVector::from_weights(&ws);
        let k = w.len();
        // A feasible cap: at least 1/k.
        let cap = (1.0 / denom as f64).max(1.0 / k as f64);
        let c = w.capped(cap);
        prop_assert!(!c.exceeds_cap(cap, 1e-9));
        let sum: f64 = c.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Capping preserves the order of coordinates.
        for i in 0..k {
            for j in 0..k {
                if w.get(i) > w.get(j) {
                    prop_assert!(c.get(i) >= c.get(j) - 1e-12);
                }
            }
        }
    }

    // Regression for the cap == 1/k feasibility boundary: any cap with
    // cap·k ≥ 1 must produce a finite simplex vector without panicking,
    // including the exact boundary where the uniform vector is the only
    // feasible point.
    #[test]
    fn capping_at_feasibility_boundary_never_panics(
        ws in positive_weights(48),
        slack in 0.0f64..0.5,
    ) {
        let w = WeightVector::from_weights(&ws);
        let k = w.len();
        // Sweep from exactly 1/k (slack = 0) up to 1.5/k.
        let cap = (1.0 + slack) / k as f64;
        let c = w.capped(cap);
        prop_assert_eq!(c.len(), k);
        prop_assert!(c.probabilities().iter().all(|p| p.is_finite() && *p >= 0.0));
        let sum: f64 = c.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(!c.exceeds_cap(cap, 1e-9));
        if slack == 0.0 {
            // Exact boundary: deterministically the uniform vector.
            let uniform = WeightVector::uniform(k);
            prop_assert_eq!(c.probabilities(), uniform.probabilities());
        }
    }

    #[test]
    fn mix_uniform_keeps_floor(ws in positive_weights(32), gamma in 0.0f64..1.0) {
        let w = WeightVector::from_weights(&ws);
        let m = w.mix_uniform(gamma);
        let k = m.len() as f64;
        for &p in m.probabilities() {
            prop_assert!(p >= gamma / k - 1e-12);
        }
    }

    // --- Slate machinery ---

    #[test]
    fn systematic_sampling_returns_s_distinct_members(
        ws in positive_weights(40),
        s_raw in 1usize..10,
        seed in any::<u64>(),
    ) {
        let w = WeightVector::from_weights(&ws);
        let k = w.len();
        let s = s_raw.min(k);
        let capped = w.capped((1.0 / s as f64).max(1.0 / k as f64));
        let q: Vec<f64> = capped.probabilities().iter().map(|&p| (s as f64 * p).min(1.0)).collect();
        // Only exercise when q genuinely sums to s (cap feasible).
        let total: f64 = q.iter().sum();
        prop_assume!((total - s as f64).abs() < 1e-6);
        let mut rng = SmallRng::seed_from_u64(seed);
        let slate = systematic_sample(&q, s, &mut rng);
        prop_assert_eq!(slate.len(), s);
        let mut sorted = slate.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s, "duplicate slate members");
        prop_assert!(slate.iter().all(|&i| i < k));
    }

    #[test]
    fn decomposition_reconstructs_q_exactly(
        ws in positive_weights(24),
        s_raw in 1usize..6,
    ) {
        let w = WeightVector::from_weights(&ws);
        let k = w.len();
        let s = s_raw.min(k);
        let capped = w.capped((1.0 / s as f64).max(1.0 / k as f64));
        let q: Vec<f64> = capped.probabilities().iter().map(|&p| (s as f64 * p).min(1.0)).collect();
        let total: f64 = q.iter().sum();
        prop_assume!((total - s as f64).abs() < 1e-6);

        let d = decompose_into_slates(&q, s);
        let lambda_sum: f64 = d.iter().map(|(l, _)| l).sum();
        prop_assert!((lambda_sum - 1.0).abs() < 1e-6, "lambda sum {}", lambda_sum);
        let mut recon = vec![0.0; k];
        for (lambda, slate) in &d {
            prop_assert_eq!(slate.len(), s);
            prop_assert!(*lambda >= -1e-12);
            for &i in slate {
                recon[i] += lambda;
            }
        }
        for i in 0..k {
            prop_assert!((recon[i] - q[i]).abs() < 1e-6, "arm {}: {} vs {}", i, recon[i], q[i]);
        }
    }

    // --- Statistics ---

    #[test]
    fn running_stats_merge_is_associative_enough(
        xs in prop::collection::vec(-1e6f64..1e6, 2..200),
        split in 1usize..199,
    ) {
        let split = split.min(xs.len() - 1);
        let seq: RunningStats = xs.iter().copied().collect();
        let mut a: RunningStats = xs[..split].iter().copied().collect();
        let b: RunningStats = xs[split..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-6 * (1.0 + seq.mean().abs()));
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-4 * (1.0 + seq.variance()));
    }

    // --- Telemetry aggregates (trace::MetricsSink building blocks) ---

    #[test]
    fn histogram_merge_is_associative_and_order_insensitive(
        xs in prop::collection::vec(1e-9f64..1e9, 0..60),
        ys in prop::collection::vec(1e-9f64..1e9, 0..60),
        zs in prop::collection::vec(1e-9f64..1e9, 0..60),
    ) {
        let h = |vals: &[f64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (x ⊕ y) ⊕ z
        let mut left = h(&xs);
        left.merge(&h(&ys));
        left.merge(&h(&zs));
        // x ⊕ (y ⊕ z)
        let mut yz = h(&ys);
        yz.merge(&h(&zs));
        let mut right = h(&xs);
        right.merge(&yz);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        // Order-insensitive: z ⊕ y ⊕ x has the same buckets.
        let mut rev = h(&zs);
        rev.merge(&h(&ys));
        rev.merge(&h(&xs));
        prop_assert_eq!(left.bucket_counts(), rev.bucket_counts());
        prop_assert_eq!(left.non_positive_count(), rev.non_positive_count());
        // Merging loses no mass and invents none.
        prop_assert_eq!(left.count(), (xs.len() + ys.len() + zs.len()) as u64);
        prop_assert!((left.stats().mean() - rev.stats().mean()).abs()
            <= 1e-6 * (1.0 + left.stats().mean().abs()));
    }

    #[test]
    fn histogram_counts_are_conserved_and_split_invariant(
        xs in prop::collection::vec(-1e6f64..1e6, 1..120),
        split in 0usize..120,
    ) {
        let split = split.min(xs.len());
        let mut whole = Histogram::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Histogram::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        let mut b = Histogram::new();
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), xs.len() as u64);
        prop_assert_eq!(a.bucket_counts(), whole.bucket_counts());
        prop_assert_eq!(a.non_positive_count(), whole.non_positive_count());
        let in_buckets: u64 = whole.bucket_counts().iter().sum();
        prop_assert_eq!(in_buckets + whole.non_positive_count(), xs.len() as u64);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        xs in prop::collection::vec(1e-6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            h.record(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let (qlo, qhi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = h.quantile(qlo);
        let vhi = h.quantile(qhi);
        prop_assert!(vlo <= vhi, "quantile({qlo}) = {vlo} > quantile({qhi}) = {vhi}");
        for q in [0.0, qlo, qhi, 1.0] {
            let v = h.quantile(q);
            prop_assert!((lo..=hi).contains(&v), "quantile({q}) = {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_ignores_non_finite_samples(
        xs in prop::collection::vec(1e-6f64..1e6, 0..40),
    ) {
        let mut clean = Histogram::new();
        let mut dirty = Histogram::new();
        for &x in &xs {
            clean.record(x);
            dirty.record(x);
        }
        dirty.record(f64::NAN);
        dirty.record(f64::INFINITY);
        dirty.record(f64::NEG_INFINITY);
        prop_assert_eq!(clean.count(), dirty.count());
        prop_assert_eq!(clean.bucket_counts(), dirty.bucket_counts());
    }

    #[test]
    fn counter_merge_adds_and_commutes(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        bump in 0u64..100,
    ) {
        let mut x = Counter::new();
        x.add(a);
        let mut y = Counter::new();
        y.add(b);
        for _ in 0..bump {
            y.incr();
        }
        let mut xy = x;
        xy.merge(&y);
        let mut yx = y;
        yx.merge(&x);
        prop_assert_eq!(xy.get(), a + b + bump);
        prop_assert_eq!(xy.get(), yx.get());
    }

    // --- APR substrate ---

    #[test]
    fn interaction_survival_is_monotone_in_x(
        x1 in 1usize..200,
        x2 in 1usize..200,
        opt in 5usize..100,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        for m in [
            InteractionModel::pairwise_with_optimum(opt),
            InteractionModel::decay_with_optimum(opt),
        ] {
            prop_assert!(m.expected_survival(lo) >= m.expected_survival(hi) - 1e-12);
            prop_assert!(m.expected_survival(lo) <= 1.0 && m.expected_survival(hi) >= 0.0);
        }
    }

    #[test]
    fn interaction_survival_is_permutation_invariant(
        ids in prop::collection::hash_set(any::<u64>(), 2..12),
        world in any::<u64>(),
        opt in 5usize..60,
    ) {
        let m = InteractionModel::pairwise_with_optimum(opt);
        let mut v: Vec<MutationId> = ids.into_iter().map(MutationId).collect();
        let forward = m.composition_survives(world, &v);
        v.reverse();
        prop_assert_eq!(forward, m.composition_survives(world, &v));
    }

    #[test]
    fn mutation_id_roundtrip_is_injective(
        site1 in 0usize..10_000,
        donor1 in 0usize..10_000,
        site2 in 0usize..10_000,
        donor2 in 0usize..10_000,
        op1 in 0usize..4,
        op2 in 0usize..4,
    ) {
        let ops = [MutOp::Delete, MutOp::Insert, MutOp::Swap, MutOp::Replace];
        let m1 = Mutation { op: ops[op1], site: site1, donor: donor1 };
        let m2 = Mutation { op: ops[op2], site: site2, donor: donor2 };
        prop_assert_eq!(m1 == m2, m1.id() == m2.id());
    }

    #[test]
    fn mutation_safety_is_a_fixed_function_of_the_world(
        site in 0usize..1_000,
        donor in 0usize..1_000,
        world in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let m = Mutation { op: MutOp::Replace, site, donor };
        prop_assert_eq!(m.is_safe(world, rate), m.is_safe(world, rate));
    }
}

proptest! {
    // Heavier cases get fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pool_compositions_are_distinct_and_from_pool(
        target in 5usize..60,
        x in 1usize..5,
        seed in any::<u64>(),
    ) {
        use apr_sim::{BugScenario, ScenarioKind};
        let s = BugScenario::custom("prop", ScenarioKind::Synthetic, 30, 8, 200, 10, 0.01, 3);
        let pool = apr_sim::MutationPool::precompute(
            &s.program, &s.suite, &s.world, target, 1, None,
        );
        prop_assume!(pool.len() >= x);
        let mut rng = SmallRng::seed_from_u64(seed);
        let comp = pool.sample_composition(x, &mut rng);
        prop_assert_eq!(comp.len(), x);
        let mut ids: Vec<u64> = comp.iter().map(|m| m.id().0).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
        for m in &comp {
            prop_assert!(pool.mutations().contains(m));
        }
    }

    #[test]
    fn evaluation_is_deterministic_for_any_composition(
        x in 0usize..8,
        seed in any::<u64>(),
    ) {
        use apr_sim::{BugScenario, ScenarioKind};
        let s = BugScenario::custom("prop2", ScenarioKind::Synthetic, 30, 8, 200, 10, 0.01, 9);
        let sites: Vec<usize> = (0..s.program.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let comp: Vec<Mutation> = (0..x)
            .map(|_| Mutation::random(&s.program, &sites, &mut rng))
            .collect();
        let a = s.evaluate(&comp, None);
        let b = s.evaluate(&comp, None);
        prop_assert_eq!(a, b);
        prop_assert!(a.fitness <= s.suite.max_fitness());
        if a.repaired {
            prop_assert!(a.survived);
        }
    }
}
