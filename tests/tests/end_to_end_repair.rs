//! Integration: the full MWRepair pipeline and the §IV-G baseline
//! comparison on catalog scenarios.

use apr_baselines::{AdaptiveSearch, GenProg, GenProgConfig, RandomSearch, SearchBudget};
use apr_sim::{BugScenario, CostLedger};
use integration_tests::test_seed;
use mwrepair::{repair_with_variant, MwRepairConfig, VariantChoice};

#[test]
fn mwrepair_repairs_an_easy_catalog_scenario_with_every_variant() {
    let s = BugScenario::by_name("lighttpd-1806-1807").unwrap();
    let pool = s.build_pool(test_seed(10, 0), None);
    for variant in [
        VariantChoice::Standard,
        VariantChoice::Slate,
        VariantChoice::Distributed,
    ] {
        let out = repair_with_variant(
            &s,
            &pool,
            variant,
            &MwRepairConfig::seeded(test_seed(10, 1)),
            None,
        )
        .expect("k ≤ 512 arms is tractable for all variants");
        assert!(out.is_repaired(), "{variant:?} found no repair");
        // Independent verification: the returned patch reproduces.
        let patch = out.repair.unwrap();
        let verify = s.evaluate(&patch.mutations, None);
        assert!(verify.repaired, "{variant:?} patch does not reproduce");
        assert_eq!(verify.fitness, s.suite.max_fitness());
    }
}

#[test]
fn mwrepair_repairs_a_hard_scenario_where_single_edit_search_fails() {
    // gzip-2009-09-26 is tuned so single-edit search needs ≈22k expected
    // evaluations; a 10k budget exhausts for both the deterministic (AE)
    // and the random (RSRepair) single-edit searches. MWRepair's
    // multi-mutation probes reach the repair far sooner.
    let s = BugScenario::by_name("gzip-2009-09-26").unwrap();
    let pool = s.build_pool(test_seed(11, 0), None);

    let mw = repair_with_variant(
        &s,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(test_seed(11, 1)),
        None,
    )
    .unwrap();
    assert!(mw.is_repaired(), "MWRepair failed the hard scenario");
    assert!(
        mw.probes < 10_000,
        "MWRepair used {} probes — no better than single-edit search",
        mw.probes
    );

    // AE is deterministic: one run settles it.
    let ae = AdaptiveSearch::default().run(&s, &SearchBudget::new(10_000, 0), None);
    assert!(
        !ae.is_repaired(),
        "AE unexpectedly repaired the hard scenario"
    );
    let rs = RandomSearch::default().run(&s, &SearchBudget::new(10_000, 7), None);
    assert!(
        !rs.is_repaired(),
        "RSRepair unexpectedly repaired the hard scenario"
    );
}

#[test]
fn repair_composes_multiple_mutations() {
    // The headline capability: repairs are found *inside compositions* of
    // many mutations — "an approach that to our knowledge is unexplored in
    // the program repair literature".
    let s = BugScenario::by_name("gzip-2009-09-26").unwrap();
    let pool = s.build_pool(test_seed(12, 0), None);
    let out = repair_with_variant(
        &s,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(test_seed(12, 1)),
        None,
    )
    .unwrap();
    let patch = out.repair.expect("repair expected");
    assert!(
        patch.mutations.len() > 2,
        "repair used only {} mutations — not a multi-edit composition",
        patch.mutations.len()
    );
}

#[test]
fn baselines_repair_easy_scenarios_within_genprog_budgets() {
    let s = BugScenario::by_name("Closure13").unwrap();
    let budget = SearchBudget::new(10_000, test_seed(13, 0));
    let gp = GenProg::new(GenProgConfig::default()).run(&s, &budget, None);
    let rs = RandomSearch::default().run(&s, &budget, None);
    assert!(gp.is_repaired(), "GenProg failed an easy scenario");
    assert!(rs.is_repaired(), "RSRepair failed an easy scenario");
    // Patches reproduce.
    assert!(s.evaluate(gp.repair.as_ref().unwrap(), None).repaired);
    assert!(s.evaluate(rs.repair.as_ref().unwrap(), None).repaired);
}

#[test]
fn ledger_separates_precompute_from_online_cost() {
    let s = BugScenario::by_name("Math80").unwrap();
    let precompute = CostLedger::new();
    let pool = s.build_pool(test_seed(14, 0), Some(&precompute));
    let pre_evals = precompute.fitness_evals();
    assert!(pre_evals as usize >= pool.len(), "precompute undercounted");

    let online = CostLedger::new();
    let out = repair_with_variant(
        &s,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(test_seed(14, 1)),
        Some(&online),
    )
    .unwrap();
    assert_eq!(online.fitness_evals(), out.probes);
    // Parallel evaluation: critical path strictly below sequential cost.
    assert!(online.critical_path_ms() < online.simulated_ms());
}

#[test]
fn pool_revalidation_supports_suite_growth() {
    // §III-C: "the safe mutation pool can be updated incrementally" as
    // tests are added — and the shrunken pool still supports repair.
    let s = BugScenario::by_name("libtiff-2005-12-14").unwrap();
    let mut pool = s.build_pool(test_seed(15, 0), None);
    let before = pool.len();
    let evicted = pool.revalidate(&s.world, 999, 25, 0.05, None);
    assert!(evicted > 0, "expected some evictions at 5% break rate");
    assert_eq!(pool.len(), before - evicted);

    let out = repair_with_variant(
        &s,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(test_seed(15, 1)),
        None,
    )
    .unwrap();
    assert!(out.is_repaired(), "repair failed after pool revalidation");
}

#[test]
fn latency_advantage_over_sequential_baselines() {
    // The §IV-G latency shape on one scenario: MWRepair's parallel probes
    // give a critical path far below AE's sequential enumeration.
    let s = BugScenario::by_name("units").unwrap();
    let pool = s.build_pool(test_seed(16, 0), None);
    let mw_ledger = CostLedger::new();
    let mw = repair_with_variant(
        &s,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(test_seed(16, 1)),
        Some(&mw_ledger),
    )
    .unwrap();
    assert!(mw.is_repaired());

    let ae_ledger = CostLedger::new();
    let ae = AdaptiveSearch::default().run(&s, &SearchBudget::new(10_000, 0), Some(&ae_ledger));
    if ae.is_repaired() {
        assert!(
            mw_ledger.critical_path_ms() * 5 < ae_ledger.critical_path_ms(),
            "MWRepair latency {} not ≪ AE latency {}",
            mw_ledger.critical_path_ms(),
            ae_ledger.critical_path_ms()
        );
    }
}
