//! Integration: the analytic cost model (Table I, §IV-E) against measured
//! behaviour of the implementations.

use integration_tests::{test_run_config, test_seed};
use mwu_core::cost::{
    asymptotic_costs, default_operating_point, CostWeights, Variant, WeightedCostModel,
};
use mwu_core::prelude::*;
use mwu_datasets::catalog;
use simnet::expected_max_load;

#[test]
fn measured_congestion_tracks_table1_communication_entries() {
    let d = catalog::by_name("random1024").unwrap();
    let k = d.size();

    // Standard: communication O(n) with n = k.
    let mut bandit = d.bandit();
    let mut alg = StandardMwu::new(k, StandardConfig::default());
    let out = run_to_convergence(&mut alg, &mut bandit, &test_run_config(test_seed(20, 0)));
    assert_eq!(out.comm.peak_congestion, k);

    // Distributed: communication Θ(ln n / ln ln n) w.h.p. with n = pop.
    let mut bandit = d.bandit();
    let mut alg = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
    let pop = alg.population();
    let out = run_to_convergence(&mut alg, &mut bandit, &test_run_config(test_seed(20, 1)));
    let theory = expected_max_load(pop);
    assert!(
        (out.comm.peak_congestion as f64) < 6.0 * theory,
        "peak congestion {} vs theory {theory}",
        out.comm.peak_congestion
    );

    // Slate: communication O(n) with n = slate size.
    let mut bandit = d.bandit();
    let mut alg = SlateMwu::new(k, SlateConfig::default());
    let s = alg.slate_size();
    let out = run_to_convergence(&mut alg, &mut bandit, &test_run_config(test_seed(20, 2)));
    assert_eq!(out.comm.peak_congestion, s);
}

#[test]
fn measured_cpu_footprints_match_min_agent_entries() {
    let k = 4096;
    // Table I minimum agents: Standard n = k; Slate n = γk; Distributed k^1.5.
    let std_alg = StandardMwu::new(k, StandardConfig::default());
    assert_eq!(std_alg.cpus_per_iteration(), k);

    let slate_alg = SlateMwu::new(k, SlateConfig::default());
    assert_eq!(
        slate_alg.cpus_per_iteration(),
        default_operating_point(Variant::Slate, k).n
    );

    let dist_alg = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
    assert_eq!(
        dist_alg.cpus_per_iteration(),
        default_operating_point(Variant::Distributed, k).n
    );
}

#[test]
fn memory_entries_reflect_implementations() {
    // O(k) explicit weights for Standard/Slate, O(1)-per-agent for
    // Distributed (its state is one option id per agent).
    let p = default_operating_point(Variant::Standard, 512);
    assert_eq!(asymptotic_costs(Variant::Standard, &p).memory, 512.0);
    assert_eq!(
        asymptotic_costs(
            Variant::Distributed,
            &default_operating_point(Variant::Distributed, 512)
        )
        .memory,
        1.0
    );

    let alg = StandardMwu::new(512, StandardConfig::default());
    assert_eq!(alg.probabilities().len(), 512);
    let dist = DistributedMwu::try_new(512, DistributedConfig::default()).unwrap();
    // Per-agent state: one u32 choice. Total state = population, not k×pop.
    assert_eq!(dist.counts().len(), 512);
    assert!(dist.population() >= 512);
}

#[test]
fn apr_regime_recommendation_is_consistent_with_measured_winner() {
    // The cost model recommends Standard for the APR regime (§IV-E.2); the
    // measured §IV-G comparison uses Standard and wins. Here: Standard's
    // measured latency (iterations, since all probes are parallel) on an
    // APR dataset beats Slate's.
    let d = catalog::by_name("libtiff-2005-12-14").unwrap();
    let model = WeightedCostModel::new(CostWeights::apr_regime());
    // The model's Standard recommendation kicks in once Distributed's
    // k^{3/2} agent bill dominates (k ≳ 1000, the scale of the paper's C
    // scenarios); at the Java scenarios' k = 100 Distributed's population
    // is still cheap enough to win on paper, though not in measured cycles.
    assert_eq!(model.recommend_for_k(1024), Variant::Standard);
    assert_eq!(model.recommend_for_k(4096), Variant::Standard);

    let mut iters_std = 0;
    let mut iters_slate = 0;
    for rep in 0..3 {
        let mut bandit = d.bandit();
        let mut alg = StandardMwu::new(d.size(), StandardConfig::default());
        iters_std +=
            run_to_convergence(&mut alg, &mut bandit, &test_run_config(test_seed(21, rep)))
                .iterations;
        let mut bandit = d.bandit();
        let mut alg = SlateMwu::new(d.size(), SlateConfig::default());
        iters_slate +=
            run_to_convergence(&mut alg, &mut bandit, &test_run_config(test_seed(21, rep)))
                .iterations;
    }
    assert!(
        iters_std < iters_slate,
        "standard {iters_std} !< slate {iters_slate} update cycles"
    );
}

#[test]
fn two_term_model_favors_distributed_everywhere() {
    // §IV-E.1: "this analysis clearly favors Distributed."
    let m = WeightedCostModel::new(CostWeights::two_term(1.0, 1.0));
    for k in [64, 1024, 16384] {
        assert_eq!(m.recommend_for_k(k), Variant::Distributed, "k={k}");
    }
}
