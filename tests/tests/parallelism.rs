//! Thread-count invariance of the parallel harness.
//!
//! The vendored `rayon` work-sharing pool promises byte-identical output
//! for every thread count (see `docs/PARALLELISM.md`). These tests pin the
//! contract on the three hot paths the pool drives — the experiment grid
//! with its JSONL telemetry, the nested Fig. 4 Monte-Carlo curves, and the
//! MWRepair probe loop — by running each under participation caps of 1 and
//! 4 plus uncapped, and demanding identical bytes.
//!
//! The pool is global and sized once per process, so every test funnels
//! through [`pool_of_four`] before touching parallel code.

use apr_sim::fig4::{repair_density_curve, survival_curve, untested_survival_curve};
use apr_sim::{BugScenario, ScenarioKind};
use mwrepair::{effective_arms, repair, MwRepairConfig};
use mwu_core::prelude::*;
use mwu_datasets::full_catalog;
use mwu_experiments::{run_grid_observed, GridConfig};
use rayon::prelude::*;
use std::sync::Once;

/// Size the global pool to 4 threads exactly once, before any parallel
/// call in this binary initializes it at the hardware default.
fn pool_of_four() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        assert!(rayon::set_num_threads(4), "pool already initialized");
    });
    assert_eq!(rayon::current_num_threads(), 4);
}

#[test]
fn pool_reports_requested_thread_count() {
    pool_of_four();
}

/// The grid's serialized cells and its full JSONL trace, run under a
/// participation cap (`None` = uncapped).
fn grid_output(cap: Option<usize>) -> (String, Vec<u8>) {
    let run = || {
        let datasets: Vec<_> = full_catalog()
            .into_iter()
            .filter(|d| d.name == "random64" || d.name == "unimodal256")
            .collect();
        assert!(!datasets.is_empty());
        let config = GridConfig {
            replicates: 8,
            max_iterations: 2_000,
            seed: 0xBEEF,
        };
        let mut sink = JsonlSink::new(Vec::new());
        let cells = run_grid_observed(&datasets, &config, &mut sink);
        (serde_json::to_string(&cells).unwrap(), sink.into_inner())
    };
    match cap {
        Some(c) => rayon::with_max_threads(c, run),
        None => run(),
    }
}

#[test]
fn grid_cells_and_trace_are_thread_count_invariant() {
    pool_of_four();
    let (cells_1, trace_1) = grid_output(Some(1));
    let (cells_4, trace_4) = grid_output(Some(4));
    let (cells_default, trace_default) = grid_output(None);
    assert!(!trace_1.is_empty());
    assert_eq!(cells_1, cells_4, "cell results: 1 vs 4 threads");
    assert_eq!(cells_1, cells_default, "cell results: 1 vs default");
    assert_eq!(trace_1, trace_4, "JSONL trace: 1 vs 4 threads");
    assert_eq!(trace_1, trace_default, "JSONL trace: 1 vs default");
}

/// All three Fig. 4 Monte-Carlo curves — the nested-parallelism path
/// (`par_iter` over x-values, `into_par_iter` over trials inside).
fn fig4_curves(cap: usize) -> String {
    rayon::with_max_threads(cap, || {
        let scenario =
            BugScenario::custom("par-inv", ScenarioKind::Synthetic, 60, 12, 250, 12, 0.3, 7);
        let pool = scenario.build_pool(1, None);
        let xs: Vec<usize> = (1..=8).collect();
        let a = survival_curve(&scenario, &pool, &xs, 200, 11);
        let u = untested_survival_curve(&scenario, &xs, 200, 12);
        let d = repair_density_curve(&scenario, &pool, &xs, 200, 13);
        serde_json::to_string(&(a, u, d)).unwrap()
    })
}

#[test]
fn fig4_nested_curves_are_thread_count_invariant() {
    pool_of_four();
    let one = fig4_curves(1);
    let four = fig4_curves(4);
    assert_eq!(one, four);
}

/// A full MWRepair run (precompute + probe loop) under a cap.
fn repair_outcome(cap: usize) -> String {
    rayon::with_max_threads(cap, || {
        let scenario =
            BugScenario::custom("par-rep", ScenarioKind::Synthetic, 60, 12, 300, 15, 0.4, 3);
        let pool = scenario.build_pool(1, None);
        let config = MwRepairConfig {
            max_iterations: 60,
            seed: 19,
            reward: mwrepair::RewardMode::DensityProxy,
            max_composition: 512,
        };
        let mut alg = StandardMwu::new(
            effective_arms(pool.len(), &config),
            StandardConfig::default(),
        );
        let outcome = repair(&scenario, &pool, &mut alg, &config);
        serde_json::to_string(&outcome).unwrap()
    })
}

#[test]
fn repair_outcome_is_thread_count_invariant() {
    pool_of_four();
    let one = repair_outcome(1);
    let four = repair_outcome(4);
    assert_eq!(one, four);
}

#[test]
fn par_pipeline_matches_sequential_on_large_input() {
    pool_of_four();
    let n = 50_000u64;
    let par: Vec<u64> = (0..n).into_par_iter().map(|i| i.wrapping_mul(i)).collect();
    let seq: Vec<u64> = (0..n).map(|i| i.wrapping_mul(i)).collect();
    assert_eq!(par, seq);
    let par_sum: u64 = (0..n).into_par_iter().map(|i| i % 7).sum();
    let seq_sum: u64 = (0..n).map(|i| i % 7).sum();
    assert_eq!(par_sum, seq_sum);
}

#[test]
fn worker_panic_reaches_the_submitting_thread() {
    pool_of_four();
    let r = std::panic::catch_unwind(|| {
        let _: Vec<u64> = (0..4096u64)
            .into_par_iter()
            .map(|i| if i == 2048 { panic!("probe failed") } else { i })
            .collect();
    });
    assert!(r.is_err(), "panic in a parallel item must propagate");
    // The pool survives a panicked job and keeps serving work.
    let sum: u64 = (0..1000u64).into_par_iter().sum();
    assert_eq!(sum, 499_500);
}

/// Chunk sizing must never affect output: boundary sizes around the pool
/// width and the legacy `width*4` divisor, crossed with cost-hint extremes
/// (0 = adaptive, 1 = everything-inline via the small-job route, huge =
/// one-item chunks), all byte-identical to sequential.
#[test]
fn chunk_sizing_edges_match_sequential() {
    pool_of_four();
    let f = |i: u64| i.wrapping_mul(0x9E37_79B9).rotate_left(13);
    for n in [5u64, 15, 16, 17] {
        let seq: Vec<u64> = (0..n).map(f).collect();
        let par: Vec<u64> = (0..n).into_par_iter().map(f).collect();
        assert_eq!(par, seq, "n={n} unhinted");
        for hint in [0u64, 1, 50_000, u64::MAX] {
            let hinted: Vec<u64> = (0..n).into_par_iter().with_cost_hint(hint).map(f).collect();
            assert_eq!(hinted, seq, "n={n} hint={hint}");
        }
    }
}

/// Adaptive sizing (no cost hint) measures its first chunk under whatever
/// participation cap is active; nesting caps must not move a byte.
#[test]
fn adaptive_sizing_under_nested_caps_matches_sequential() {
    pool_of_four();
    let n = 10_000u64;
    let f = |i: u64| (i ^ (i >> 7)).wrapping_mul(31);
    let seq: Vec<u64> = (0..n).map(f).collect();
    for cap in [1usize, 2, 3] {
        let par = rayon::with_max_threads(cap, || {
            rayon::with_max_threads(cap.min(2), || {
                (0..n).into_par_iter().map(f).collect::<Vec<u64>>()
            })
        });
        assert_eq!(par, seq, "cap={cap}");
    }
}

/// A panic raised in an item claimed through the mailbox fast-path must
/// reach the submitter, and the pool must keep serving work afterwards.
/// The hint forces ~20-item chunks, so parked workers claim most of the
/// job through the fast-path rather than the queue scan.
#[test]
fn worker_panic_propagates_through_claim_fast_path() {
    pool_of_four();
    let r = std::panic::catch_unwind(|| {
        let _: Vec<u64> = (0..100_000u64)
            .into_par_iter()
            .with_cost_hint(10_000)
            .map(|i| {
                if i == 65_537 {
                    panic!("fast-path probe failed")
                } else {
                    i
                }
            })
            .collect();
    });
    assert!(r.is_err(), "panic in a fast-path chunk must propagate");
    let sum: u64 = (0..1000u64).into_par_iter().with_cost_hint(1_000).sum();
    assert_eq!(sum, 499_500);
}
