//! Telemetry determinism suite: golden traces, observer invariants, and
//! replicate re-runs from trace headers.
//!
//! The observer pipeline's contract has three legs, each pinned here:
//!
//! 1. **Golden traces** — event payloads carry no wall-clock data and the
//!    JSON encoder keeps insertion-ordered keys, so two same-seed runs emit
//!    byte-identical JSONL for every variant.
//! 2. **Observer invariants** — iteration indices strictly increase,
//!    convergence fires at most once (and only on converged runs), summed
//!    per-cycle communication deltas reconstruct the final [`CommStats`],
//!    and observing a run does not change its outcome.
//! 3. **Trace headers are recipes** — each grid [`TraceEvent::Replicate`]
//!    carries `run_seed` and `max_iterations`, from which the replicate
//!    re-runs standalone to the identical outcome.

use integration_tests::{test_run_config, test_seed};
use mwrepair::{effective_arms, repair_observed, repair_with_ledger, MwRepairConfig};
use mwu_core::trace::{JsonlSink, NullObserver, Observer, TraceEvent};
use mwu_core::{
    run_to_convergence, run_to_convergence_observed, run_with_regret_observed, CommStats,
    DistributedConfig, DistributedMwu, RunConfig, RunOutcome, SlateConfig, SlateMwu,
    StandardConfig, StandardMwu, Variant,
};
use mwu_datasets::{catalog, Dataset};
use mwu_experiments::{replicate_seed, run_cell_observed, GridConfig};

/// Collects every event, preserving order.
#[derive(Default)]
struct Collect {
    events: Vec<TraceEvent>,
}

impl Observer for Collect {
    fn on_event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

const VARIANTS: [&str; 3] = ["standard", "slate", "distributed"];

/// Run `variant` on `dataset` under `observer`, constructing a fresh
/// algorithm instance (the runs must be independent for determinism checks).
fn run_observed<O: Observer>(
    variant: &str,
    dataset: &Dataset,
    cfg: &RunConfig,
    observer: &mut O,
) -> RunOutcome {
    let k = dataset.size();
    let mut bandit = dataset.bandit();
    match variant {
        "standard" => {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            run_to_convergence_observed(&mut alg, &mut bandit, cfg, observer)
        }
        "slate" => {
            let mut alg = SlateMwu::new(k, SlateConfig::default());
            run_to_convergence_observed(&mut alg, &mut bandit, cfg, observer)
        }
        "distributed" => {
            let mut alg = DistributedMwu::try_new(k, DistributedConfig::default())
                .expect("test datasets are distributed-tractable");
            run_to_convergence_observed(&mut alg, &mut bandit, cfg, observer)
        }
        other => panic!("unknown variant {other}"),
    }
}

fn jsonl_trace(variant: &str, dataset: &Dataset, cfg: &RunConfig) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    run_observed(variant, dataset, cfg, &mut sink);
    sink.into_inner()
}

// ---------------------------------------------------------------- leg 1 —

#[test]
fn same_seed_runs_emit_byte_identical_traces_for_every_variant() {
    let d = catalog::by_name("random64").unwrap();
    let cfg = test_run_config(test_seed(20, 0));
    for variant in VARIANTS {
        let a = jsonl_trace(variant, &d, &cfg);
        let b = jsonl_trace(variant, &d, &cfg);
        assert!(!a.is_empty(), "{variant}: empty trace");
        assert_eq!(a, b, "{variant}: same-seed traces differ");
    }
}

#[test]
fn different_seeds_emit_different_traces() {
    // Guards the golden-trace test against vacuity: if the sink ignored the
    // run, same-seed traces would trivially match.
    let d = catalog::by_name("random64").unwrap();
    let a = jsonl_trace("standard", &d, &test_run_config(test_seed(20, 1)));
    let b = jsonl_trace("standard", &d, &test_run_config(test_seed(20, 2)));
    assert_ne!(a, b, "distinct seeds produced identical traces");
}

#[test]
fn every_trace_line_parses_and_reencodes_identically() {
    let d = catalog::by_name("random64").unwrap();
    let raw = jsonl_trace("distributed", &d, &test_run_config(test_seed(20, 3)));
    let text = String::from_utf8(raw).expect("trace is UTF-8");
    assert!(text.lines().count() >= 3, "expected start + cycles + end");
    for line in text.lines() {
        let event: TraceEvent = serde_json::from_str(line).expect("line parses");
        let again = serde_json::to_string(&event).expect("re-encode");
        assert_eq!(again, line, "round-trip changed the encoding");
    }
}

#[test]
fn run_end_event_agrees_with_returned_outcome() {
    let d = catalog::by_name("random64").unwrap();
    let cfg = test_run_config(test_seed(21, 0));
    for variant in VARIANTS {
        let mut collect = Collect::default();
        let outcome = run_observed(variant, &d, &cfg, &mut collect);
        let last = collect.events.last().expect("trace has events");
        match last {
            TraceEvent::RunEnd(traced) => assert_eq!(
                traced, &outcome,
                "{variant}: RunEnd payload disagrees with the returned outcome"
            ),
            other => panic!("{variant}: last event is {other:?}, not RunEnd"),
        }
    }
}

// ---------------------------------------------------------------- leg 2 —

#[test]
fn iteration_indices_strictly_increase_from_one() {
    let d = catalog::by_name("random64").unwrap();
    let cfg = test_run_config(test_seed(22, 0));
    for variant in VARIANTS {
        let mut collect = Collect::default();
        run_observed(variant, &d, &cfg, &mut collect);
        let indices: Vec<usize> = collect
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Iteration(it) => Some(it.iteration),
                _ => None,
            })
            .collect();
        assert!(!indices.is_empty(), "{variant}: no iteration events");
        assert_eq!(indices[0], 1, "{variant}: first cycle is not 1");
        assert!(
            indices.windows(2).all(|w| w[1] == w[0] + 1),
            "{variant}: iteration indices not consecutive: {indices:?}"
        );
    }
}

#[test]
fn convergence_fires_at_most_once_and_only_when_converged() {
    let d = catalog::by_name("random64").unwrap();
    for variant in VARIANTS {
        for rep in 0..3 {
            let cfg = test_run_config(test_seed(23, rep));
            let mut collect = Collect::default();
            let outcome = run_observed(variant, &d, &cfg, &mut collect);
            let conv: Vec<_> = collect
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Convergence(c) => Some(c.clone()),
                    _ => None,
                })
                .collect();
            assert!(
                conv.len() <= 1,
                "{variant}: convergence fired {} times",
                conv.len()
            );
            assert_eq!(
                conv.len() == 1,
                outcome.converged,
                "{variant}: convergence events disagree with outcome.converged"
            );
            if let Some(c) = conv.first() {
                assert_eq!(c.iteration, outcome.iterations);
                assert_eq!(c.leader, outcome.leader);
            }
        }
    }
}

#[test]
fn summed_comm_deltas_reconstruct_final_comm_stats() {
    let d = catalog::by_name("random64").unwrap();
    let cfg = test_run_config(test_seed(24, 0));
    for variant in VARIANTS {
        let mut collect = Collect::default();
        let outcome = run_observed(variant, &d, &cfg, &mut collect);
        let mut sum = CommStats::default();
        for e in &collect.events {
            if let TraceEvent::Iteration(it) = e {
                sum.messages += it.comm.messages;
                sum.total_congestion += it.comm.congestion;
                sum.rounds += it.comm.rounds;
            }
        }
        assert_eq!(sum.messages, outcome.comm.messages, "{variant}: messages");
        assert_eq!(
            sum.total_congestion, outcome.comm.total_congestion,
            "{variant}: congestion"
        );
        assert_eq!(sum.rounds, outcome.comm.rounds, "{variant}: rounds");
    }
}

#[test]
fn observing_a_run_does_not_change_its_outcome() {
    let d = catalog::by_name("random64").unwrap();
    let cfg = test_run_config(test_seed(25, 0));
    for variant in VARIANTS {
        let unobserved = run_observed(variant, &d, &cfg, &mut NullObserver);
        let mut collect = Collect::default();
        let observed = run_observed(variant, &d, &cfg, &mut collect);
        assert_eq!(
            unobserved, observed,
            "{variant}: observation perturbed the run"
        );
    }
}

#[test]
fn regret_runs_emit_deterministic_traces_too() {
    let d = catalog::by_name("random64").unwrap();
    let cfg = test_run_config(test_seed(26, 0));
    let trace = |cfg: &RunConfig| {
        let mut alg = StandardMwu::new(d.size(), StandardConfig::default());
        let mut bandit = d.bandit();
        let mut sink = JsonlSink::new(Vec::new());
        run_with_regret_observed(&mut alg, &mut bandit, cfg, &mut sink);
        sink.into_inner()
    };
    let a = trace(&cfg);
    let b = trace(&cfg);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed regret traces differ");
}

// ---------------------------------------------------------------- leg 3 —

#[test]
fn grid_replicate_headers_re_run_to_the_traced_outcome() {
    let d = catalog::by_name("random64").unwrap();
    let grid = GridConfig {
        replicates: 3,
        max_iterations: 3_000,
        seed: test_seed(27, 0),
    };
    let mut sink = JsonlSink::new(Vec::new());
    run_cell_observed(Variant::Standard, &d, &grid, &mut sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();

    let mut replicates = 0;
    for line in text.lines() {
        let event: TraceEvent = serde_json::from_str(line).expect("line parses");
        let TraceEvent::Replicate(rep) = event else {
            continue;
        };
        replicates += 1;
        // The header's seed is the documented derivation...
        assert_eq!(
            rep.run_seed,
            replicate_seed(Variant::Standard, &d, grid.seed, rep.replicate),
            "replicate {} header seed mismatch",
            rep.replicate
        );
        // ...and (run_seed, max_iterations) alone re-runs the replicate.
        let cfg = RunConfig {
            max_iterations: rep.max_iterations,
            seed: rep.run_seed,
            run_past_convergence: false,
        };
        let mut alg = StandardMwu::new(d.size(), StandardConfig::default());
        let mut bandit = d.bandit();
        let rerun = run_to_convergence(&mut alg, &mut bandit, &cfg);
        assert_eq!(
            rerun, rep.outcome,
            "replicate {} did not reproduce from its trace header",
            rep.replicate
        );
    }
    assert_eq!(replicates, 3, "expected one Replicate event per replicate");
}

#[test]
fn grid_cell_trace_is_deterministic_and_scheduling_independent() {
    let d = catalog::by_name("random64").unwrap();
    let grid = GridConfig {
        replicates: 3,
        max_iterations: 3_000,
        seed: test_seed(27, 1),
    };
    let run = || {
        let mut sink = JsonlSink::new(Vec::new());
        run_cell_observed(Variant::Slate, &d, &grid, &mut sink);
        sink.into_inner()
    };
    assert_eq!(run(), run(), "same-seed cell traces differ");
}

// ------------------------------------------------- mwrepair probe events —

#[test]
fn repair_trace_orders_probes_and_reports_repair_once() {
    let s = apr_sim::BugScenario::by_name("lighttpd-1806-1807").unwrap();
    let pool = s.build_pool(test_seed(28, 0), None);
    let config = MwRepairConfig::seeded(test_seed(28, 1));
    let k = effective_arms(pool.len(), &config);

    let mut collect = Collect::default();
    let mut alg = StandardMwu::new(k, StandardConfig::default());
    let outcome = repair_observed(&s, &pool, &mut alg, &config, None, &mut collect);

    // Unobserved twin: telemetry must not perturb the search.
    let mut alg2 = StandardMwu::new(k, StandardConfig::default());
    let twin = repair_with_ledger(&s, &pool, &mut alg2, &config, None);
    assert_eq!(outcome.probes, twin.probes);
    assert_eq!(outcome.iterations, twin.iterations);
    assert_eq!(outcome.leader_arm, twin.leader_arm);
    assert_eq!(outcome.is_repaired(), twin.is_repaired());

    let probes: Vec<_> = collect
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Probe(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        probes.len() as u64,
        outcome.probes,
        "one ProbeEvent per probe"
    );
    // Within a cycle, probes report in agent order; across cycles the
    // iteration index never decreases.
    for w in probes.windows(2) {
        assert!(
            w[1].iteration > w[0].iteration
                || (w[1].iteration == w[0].iteration && w[1].agent == w[0].agent + 1),
            "probe order broken: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    for p in &probes {
        assert!(
            (1..=k).contains(&p.composition_size),
            "composition size {} outside 1..={k}",
            p.composition_size
        );
    }

    let repairs: Vec<_> = collect
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Repair(r) => Some(r.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        repairs.len(),
        usize::from(outcome.is_repaired()),
        "RepairEvent count disagrees with the outcome"
    );
    if let (Some(r), Some(report)) = (repairs.first(), &outcome.repair) {
        assert_eq!(r.composition_size, report.mutations.len());
    }
}

#[test]
fn repair_traces_are_deterministic() {
    let s = apr_sim::BugScenario::by_name("lighttpd-1806-1807").unwrap();
    let pool = s.build_pool(test_seed(29, 0), None);
    let config = MwRepairConfig::seeded(test_seed(29, 1));
    let k = effective_arms(pool.len(), &config);
    let run = || {
        let mut alg = StandardMwu::new(k, StandardConfig::default());
        let mut sink = JsonlSink::new(Vec::new());
        repair_observed(&s, &pool, &mut alg, &config, None, &mut sink);
        sink.into_inner()
    };
    assert_eq!(run(), run(), "same-seed repair traces differ");
}
