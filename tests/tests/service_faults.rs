//! Integration: `mwrepaird` under a hostile disk (docs/FAULTS.md).
//!
//! The storage-fault adversary ([`FaultVfs`]) and the quarantine machinery
//! extend the determinism contract of `service.rs` to failing hardware:
//!
//! * fault-free runs report exactly zero storage counters, in the summary
//!   and through the `MetricsSink` observer (`fault_free_*`);
//! * no fault schedule changes a *surviving* session's bytes, and the
//!   quarantine set itself is thread-count-invariant
//!   (`surviving_sessions_*`);
//! * quarantined sessions re-arm and complete byte-identically once the
//!   disk heals (`quarantine_rearm_*`), including after the tenant's
//!   budget also ran out (`budget_exhaustion_and_quarantine_*`);
//! * a session that *panics* is quarantined behind a post-mortem, never
//!   killing the daemon (`panicking_session_*`);
//!
//! plus a property sweep over `(fault seed, fault rate)` pinning the
//! never-aborts + heals-byte-identically pair for arbitrary schedules.

use mwrepair::VariantChoice;
use mwrepair_service::{
    encode_line, BudgetSpec, Daemon, DaemonConfig, DaemonSummary, FaultVfs, JobLine, JobSpec,
    QuarantineRecord, RealVfs, ScenarioSpec, StorageFaultConfig, StorageFaultPlan, Vfs,
};
use mwu_core::trace::Observer;
use mwu_core::MetricsSink;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Size the shared pool once at the largest thread count used below
/// (later calls are no-ops).
fn ensure_pool() {
    rayon::set_num_threads(8);
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwrd-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario() -> ScenarioSpec {
    ScenarioSpec::Synthetic {
        name: "svc-faults".into(),
        options: 20,
        x_star: 5,
        statements: 180,
        tests: 9,
        repair_rate: 0.0,
        world_seed: 3,
        pool_size: Some(20),
    }
}

fn job(id: &str, tenant: &str, seed: u64) -> JobSpec {
    JobSpec {
        id: id.into(),
        tenant: tenant.into(),
        scenario: scenario(),
        algorithm: VariantChoice::Standard,
        seed,
        max_iterations: 12,
    }
}

fn batch(jobs: &[JobSpec], budgets: &[BudgetSpec]) -> Vec<u8> {
    let mut doc = String::new();
    for b in budgets {
        doc.push_str(&encode_line(&JobLine::Budget(b.clone())));
        doc.push('\n');
    }
    for j in jobs {
        doc.push_str(&encode_line(&JobLine::Job(j.clone())));
        doc.push('\n');
    }
    doc.into_bytes()
}

/// Open + submit + run one daemon lifetime over `workdir` through `vfs`.
fn run_daemon_on(
    workdir: &Path,
    bytes: &[u8],
    vfs: Arc<dyn Vfs>,
    threads: usize,
) -> Result<DaemonSummary, mwrepair_service::DaemonError> {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = 2;
    config.quiet = true;
    config.vfs = vfs;
    let mut daemon = Daemon::open(config)?;
    daemon.submit_bytes(bytes)?;
    rayon::with_max_threads(threads, || daemon.run())
}

/// Like [`run_daemon_on`] but also returns the per-session outcome split:
/// (completed ids, quarantined ids).
fn run_split(
    workdir: &Path,
    bytes: &[u8],
    vfs: Arc<dyn Vfs>,
    threads: usize,
) -> (DaemonSummary, BTreeSet<String>, BTreeSet<String>) {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = 2;
    config.quiet = true;
    config.vfs = vfs;
    let mut daemon = Daemon::open(config).expect("open daemon");
    daemon.submit_bytes(bytes).expect("submit batch");
    let summary = rayon::with_max_threads(threads, || daemon.run()).expect("daemon run");
    let mut completed = BTreeSet::new();
    let mut quarantined = BTreeSet::new();
    for s in daemon.sessions() {
        if s.quarantine().is_some() {
            quarantined.insert(s.job().id.clone());
        } else if s.report().is_some() {
            completed.insert(s.job().id.clone());
        }
    }
    (summary, completed, quarantined)
}

fn session_dir(workdir: &Path, tenant: &str, id: &str) -> PathBuf {
    workdir.join("tenants").join(tenant).join(id)
}

fn session_bytes(workdir: &Path, tenant: &str, id: &str) -> (Vec<u8>, Vec<u8>) {
    let dir = session_dir(workdir, tenant, id);
    let trace = std::fs::read(dir.join("trace.jsonl")).expect("trace.jsonl");
    let report = std::fs::read(dir.join("report.json")).expect("report.json");
    (trace, report)
}

// ---------------------------------------------------------------------------
// Fault-free runs report exactly zero storage counters (summary + sink).
// ---------------------------------------------------------------------------

#[test]
fn fault_free_runs_report_zero_storage_counters() {
    ensure_pool();
    let workdir = tmp_dir("zero");
    let jobs = [job("zc-1", "acme", 21), job("zc-2", "beta", 22)];
    let summary =
        run_daemon_on(&workdir, &batch(&jobs, &[]), Arc::new(RealVfs), 4).expect("clean run");
    assert_eq!(summary.sessions_quarantined, 0);
    assert_eq!(summary.io_retries, 0);
    assert_eq!(summary.io_faults_injected, 0);

    // The same three counters flow through the observer pipeline.
    let mut sink = MetricsSink::new();
    sink.on_storage(summary.storage_event());
    assert_eq!(sink.io_retries.get(), 0);
    assert_eq!(sink.io_faults_injected.get(), 0);
    assert_eq!(sink.sessions_quarantined.get(), 0);
    let report = sink.report();
    assert!(report.contains("io_retries=0"), "report: {report}");
    assert!(report.contains("io_faults_injected=0"), "report: {report}");
    assert!(
        report.contains("sessions_quarantined=0"),
        "report: {report}"
    );
    let _ = std::fs::remove_dir_all(&workdir);
}

#[test]
fn storage_counters_survive_metrics_merge() {
    let mut a = MetricsSink::new();
    a.on_storage(mwu_core::StorageEvent {
        io_retries: 3,
        io_faults_injected: 5,
        sessions_quarantined: 1,
    });
    let mut b = MetricsSink::new();
    b.on_storage(mwu_core::StorageEvent {
        io_retries: 2,
        io_faults_injected: 1,
        sessions_quarantined: 0,
    });
    a.merge(&b);
    assert_eq!(a.io_retries.get(), 5);
    assert_eq!(a.io_faults_injected.get(), 6);
    assert_eq!(a.sessions_quarantined.get(), 1);
}

// ---------------------------------------------------------------------------
// Surviving sessions are byte-identical to fault-free, across threads.
// ---------------------------------------------------------------------------

const FLEET: [(&str, &str, u64); 5] = [
    ("sv-1", "acme", 31),
    ("sv-2", "acme", 32),
    ("sv-3", "beta", 33),
    ("sv-4", "beta", 34),
    ("sv-5", "ceti", 35),
];

fn fleet_jobs() -> Vec<JobSpec> {
    FLEET.iter().map(|(id, t, s)| job(id, t, *s)).collect()
}

#[test]
fn surviving_sessions_byte_identical_under_faults_across_threads() {
    ensure_pool();
    // Fault-free reference bytes (the workdir path never appears in the
    // artifacts, so a separate reference directory is comparable).
    let ref_dir = tmp_dir("surv-ref");
    run_daemon_on(&ref_dir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 1).expect("reference");

    // One *shared* workdir path, recreated per thread count: the fault
    // schedule is keyed by (seed, path, op, attempt), so identical paths
    // mean the identical adversary at 1, 4 and 8 threads — which makes
    // the quarantine set itself certifiable as thread-count-invariant.
    let workdir = tmp_dir("surv");
    let mut baseline: Option<(BTreeSet<String>, BTreeSet<String>)> = None;
    for threads in [1usize, 4, 8] {
        let _ = std::fs::remove_dir_all(&workdir);
        let plan = StorageFaultPlan::new(4242, StorageFaultConfig::mixed(0.2));
        let (summary, completed, quarantined) = run_split(
            &workdir,
            &batch(&fleet_jobs(), &[]),
            Arc::new(FaultVfs::rooted(plan, &workdir)),
            threads,
        );
        assert!(
            summary.io_faults_injected > 0,
            "adversary must actually fire (threads={threads})"
        );
        assert_eq!(
            completed.len() + quarantined.len(),
            FLEET.len(),
            "every session ends completed or quarantined"
        );
        for (id, tenant, _) in FLEET.iter().filter(|(id, ..)| completed.contains(*id)) {
            assert_eq!(
                session_bytes(&workdir, tenant, id),
                session_bytes(&ref_dir, tenant, id),
                "surviving {id} must be byte-identical to fault-free at {threads} threads"
            );
        }
        for (id, tenant, _) in FLEET.iter().filter(|(id, ..)| quarantined.contains(*id)) {
            // The post-mortem write is best-effort on a disk that is
            // still faulting; when it landed it must be well-formed.
            let path = session_dir(&workdir, tenant, id).join("quarantine.json");
            if let Ok(q) = std::fs::read_to_string(&path) {
                let record = QuarantineRecord::from_json(&q).expect("post-mortem parses");
                assert_eq!(record.job_id, *id);
                assert!(!record.errors.is_empty(), "post-mortem carries error chain");
            }
        }
        match &baseline {
            None => baseline = Some((completed, quarantined)),
            Some((c0, q0)) => {
                assert_eq!(&completed, c0, "outcome split varies with threads");
                assert_eq!(&quarantined, q0, "quarantine set varies with threads");
            }
        }
    }
    let (_, quarantined) = baseline.expect("three runs");
    assert!(
        !quarantined.is_empty(),
        "this schedule is tuned to quarantine at least one session"
    );
    let _ = std::fs::remove_dir_all(&workdir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

// ---------------------------------------------------------------------------
// Quarantine → disk heals → re-arm → byte-identical completion.
// ---------------------------------------------------------------------------

#[test]
fn quarantine_rearm_completes_byte_identically() {
    ensure_pool();
    let ref_dir = tmp_dir("rearm-ref");
    run_daemon_on(&ref_dir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 1).expect("reference");

    let workdir = tmp_dir("rearm");
    let plan = StorageFaultPlan::new(4242, StorageFaultConfig::mixed(0.2));
    let (_, _, quarantined) = run_split(
        &workdir,
        &batch(&fleet_jobs(), &[]),
        Arc::new(FaultVfs::rooted(plan, &workdir)),
        4,
    );
    assert!(!quarantined.is_empty(), "need at least one quarantine");

    // The disk heals; a clean resume re-arms every quarantined session.
    let (summary, completed, still_quarantined) =
        run_split(&workdir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 4);
    assert_eq!(summary.sessions_quarantined, 0);
    assert!(still_quarantined.is_empty());
    assert_eq!(completed.len(), FLEET.len());
    for (id, tenant, _) in &FLEET {
        assert_eq!(
            session_bytes(&workdir, tenant, id),
            session_bytes(&ref_dir, tenant, id),
            "re-armed {id} must complete byte-identically"
        );
        assert!(
            !session_dir(&workdir, tenant, id)
                .join("quarantine.json")
                .exists(),
            "post-mortem must be swept on completion"
        );
    }
    let _ = std::fs::remove_dir_all(&workdir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

// ---------------------------------------------------------------------------
// A panicking session is quarantined, never fatal.
// ---------------------------------------------------------------------------

/// Delegates to the real filesystem but panics on trace appends touching
/// the victim's directory — modeling a bug (not an I/O error) inside one
/// session's persistence path. Atomic writes stay intact so the
/// quarantine post-mortem itself can land (the post-mortem write is
/// additionally panic-hardened in `quarantine_if_failed`).
#[derive(Debug)]
struct PanicVfs {
    inner: RealVfs,
    victim: String,
}

impl PanicVfs {
    fn trip(&self, path: &Path) {
        if path.to_string_lossy().contains(&self.victim) {
            panic!("injected persistence bug under {}", self.victim);
        }
    }
}

impl Vfs for PanicVfs {
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.trip(path);
        self.inner.append_sync(path, bytes)
    }
    fn truncate_sync(&self, path: &Path, len: u64) -> std::io::Result<()> {
        self.inner.truncate_sync(path, len)
    }
    fn file_len(&self, path: &Path) -> std::io::Result<u64> {
        self.inner.file_len(path)
    }
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_atomic(path, bytes)
    }
    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove_file(path)
    }
    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[test]
fn panicking_session_is_quarantined_not_fatal() {
    ensure_pool();
    let ref_dir = tmp_dir("panic-ref");
    run_daemon_on(&ref_dir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 1).expect("reference");

    let workdir = tmp_dir("panic");
    let vfs = Arc::new(PanicVfs {
        inner: RealVfs,
        victim: format!(
            "{}sv-3{}",
            std::path::MAIN_SEPARATOR,
            std::path::MAIN_SEPARATOR
        ),
    });
    let (summary, completed, quarantined) = run_split(&workdir, &batch(&fleet_jobs(), &[]), vfs, 4);
    assert_eq!(summary.sessions_quarantined, 1, "exactly the victim");
    assert!(quarantined.contains("sv-3"));
    assert_eq!(completed.len(), FLEET.len() - 1);

    let q = std::fs::read_to_string(session_dir(&workdir, "beta", "sv-3").join("quarantine.json"))
        .expect("post-mortem");
    let record = QuarantineRecord::from_json(&q).expect("post-mortem parses");
    assert_eq!(record.kind, "panic");
    assert!(
        record
            .errors
            .iter()
            .any(|e| e.contains("injected persistence bug")),
        "panic payload captured: {:?}",
        record.errors
    );

    // Bystanders never noticed.
    for (id, tenant, _) in FLEET.iter().filter(|(id, ..)| *id != "sv-3") {
        assert_eq!(
            session_bytes(&workdir, tenant, id),
            session_bytes(&ref_dir, tenant, id),
            "bystander {id} unaffected by the panic"
        );
    }

    // Re-arm under a fixed VFS: the victim completes byte-identically.
    let (summary, completed, _) =
        run_split(&workdir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 4);
    assert_eq!(summary.sessions_quarantined, 0);
    assert_eq!(completed.len(), FLEET.len());
    assert_eq!(
        session_bytes(&workdir, "beta", "sv-3"),
        session_bytes(&ref_dir, "beta", "sv-3"),
    );
    let _ = std::fs::remove_dir_all(&workdir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

// ---------------------------------------------------------------------------
// Budget exhaustion × quarantine (the two degraded states compose).
// ---------------------------------------------------------------------------

/// Fails every *write* under the victim's directory with EIO; reads and
/// everything else pass through. Persistent (not transient), so retries
/// exhaust and the session quarantines without ever advancing durably.
#[derive(Debug)]
struct FailVictimWrites {
    inner: RealVfs,
    victim: String,
}

impl FailVictimWrites {
    fn gate(&self, path: &Path) -> std::io::Result<()> {
        if path.to_string_lossy().contains(&self.victim) {
            return Err(std::io::Error::other("injected persistent EIO"));
        }
        Ok(())
    }
}

impl Vfs for FailVictimWrites {
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.gate(path)?;
        self.inner.append_sync(path, bytes)
    }
    fn truncate_sync(&self, path: &Path, len: u64) -> std::io::Result<()> {
        self.inner.truncate_sync(path, len)
    }
    fn file_len(&self, path: &Path) -> std::io::Result<u64> {
        self.inner.file_len(path)
    }
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.gate(path)?;
        self.inner.write_atomic(path, bytes)
    }
    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove_file(path)
    }
    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[test]
fn budget_exhaustion_and_quarantine_compose() {
    ensure_pool();
    let jobs = [job("bq-1", "acme", 51), job("bq-2", "acme", 52)];

    // Unbudgeted fault-free reference: the bytes both sessions must
    // eventually land on, no matter what degradations happen en route.
    let ref_dir = tmp_dir("bq-ref");
    run_daemon_on(&ref_dir, &batch(&jobs, &[]), Arc::new(RealVfs), 1).expect("reference");

    // Budgeted faulty run. Victim bq-1's writes all fail persistently:
    // it runs its first slice but can never persist it, so it
    // quarantines with ZERO durable progress — and zero charge against
    // the tenant budget (a slice that failed to persist is never
    // billed). Sibling bq-2 alone then walks the tenant into the
    // max_evals cap and halts budget-exhausted.
    let budget = BudgetSpec {
        tenant: "acme".into(),
        max_evals: Some(150),
        max_ms: None,
    };
    let workdir = tmp_dir("bq");
    let vfs = Arc::new(FailVictimWrites {
        inner: RealVfs,
        victim: format!(
            "{}bq-1{}",
            std::path::MAIN_SEPARATOR,
            std::path::MAIN_SEPARATOR
        ),
    });
    let mut config = DaemonConfig::new(&workdir);
    config.slice_iterations = 2;
    config.quiet = true;
    config.vfs = vfs;
    let mut daemon = Daemon::open(config).expect("open daemon");
    daemon
        .submit_bytes(&batch(&jobs, &[budget]))
        .expect("submit");
    let summary = rayon::with_max_threads(4, || daemon.run()).expect("daemon run");
    assert_eq!(summary.sessions_quarantined, 1);
    assert_eq!(summary.budget_exhausted, 1, "sibling hits the cap");
    let victim = daemon.session("bq-1").expect("victim session");
    let record = victim.quarantine().expect("victim quarantined");
    assert_eq!(
        victim.cost().fitness_evals,
        0,
        "the failed slice must not be charged to the tenant"
    );
    assert_eq!(record.last_checkpoint_iteration, None);
    assert_eq!(record.last_durable_trace_len, 0);
    drop(daemon);

    // Re-arm BOTH degraded states at once (the budget lift is the
    // docs/SERVICE.md procedure; the quarantine re-arms automatically):
    // lift the budget from the spool, delete the BudgetExhausted report,
    // heal the disk, resume from the spool.
    std::fs::write(workdir.join("jobs.jsonl"), batch(&jobs, &[])).expect("lift budget");
    std::fs::remove_file(session_dir(&workdir, "acme", "bq-2").join("report.json"))
        .expect("delete budget report");
    let mut config = DaemonConfig::new(&workdir);
    config.slice_iterations = 2;
    config.quiet = true;
    let mut daemon = Daemon::open(config).expect("reopen daemon");
    let summary = rayon::with_max_threads(4, || daemon.run()).expect("resume run");
    assert_eq!(summary.sessions_quarantined, 0);
    assert_eq!(summary.budget_exhausted, 0);
    assert_eq!(summary.completed, 2);
    for id in ["bq-1", "bq-2"] {
        assert_eq!(
            session_bytes(&workdir, "acme", id),
            session_bytes(&ref_dir, "acme", id),
            "{id} byte-identical after quarantine + budget-exhaustion re-arm"
        );
        assert!(!session_dir(&workdir, "acme", id)
            .join("quarantine.json")
            .exists());
    }
    let _ = std::fs::remove_dir_all(&workdir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

// ---------------------------------------------------------------------------
// Lying fsync mid-barrier: the group-commit epoch's scariest crash. An
// append or checkpoint replace staged during the slice reports durable at
// the barrier while its tail never landed, and the device then dies. The
// lied sessions must quarantine (thread-count-invariantly), bystanders
// stay byte-identical, and a healed resume completes everyone.
// ---------------------------------------------------------------------------

#[test]
fn lying_fsync_mid_barrier_quarantines_and_heals() {
    ensure_pool();
    let ref_dir = tmp_dir("lieb-ref");
    run_daemon_on(&ref_dir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 1).expect("reference");

    let workdir = tmp_dir("lieb");
    let mut baseline: Option<(BTreeSet<String>, BTreeSet<String>)> = None;
    for threads in [1usize, 4, 8] {
        let _ = std::fs::remove_dir_all(&workdir);
        let plan = StorageFaultPlan::new(1207, StorageFaultConfig::lies(0.05));
        let (summary, completed, quarantined) = run_split(
            &workdir,
            &batch(&fleet_jobs(), &[]),
            Arc::new(FaultVfs::rooted(plan, &workdir)),
            threads,
        );
        assert!(
            summary.io_faults_injected > 0,
            "the lie schedule must fire (threads={threads})"
        );
        assert_eq!(completed.len() + quarantined.len(), FLEET.len());
        for (id, tenant, _) in FLEET.iter().filter(|(id, ..)| completed.contains(*id)) {
            assert_eq!(
                session_bytes(&workdir, tenant, id),
                session_bytes(&ref_dir, tenant, id),
                "bystander {id} unaffected by the mid-barrier lie at {threads} threads"
            );
        }
        match &baseline {
            None => baseline = Some((completed, quarantined)),
            Some((c0, q0)) => {
                assert_eq!(&completed, c0, "outcome split varies with threads");
                assert_eq!(&quarantined, q0, "quarantine set varies with threads");
            }
        }
    }
    let (completed, quarantined) = baseline.expect("three runs");
    assert!(
        !quarantined.is_empty(),
        "this schedule is tuned to catch at least one session lying"
    );
    assert!(
        !completed.is_empty(),
        "and to leave at least one bystander alive"
    );

    // A new daemon generation discards the dead device; the healed disk
    // truncates every lied tail back to its last true vouch and replays.
    let (summary, completed, still_quarantined) =
        run_split(&workdir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 4);
    assert_eq!(summary.sessions_quarantined, 0);
    assert!(still_quarantined.is_empty());
    assert_eq!(completed.len(), FLEET.len());
    for (id, tenant, _) in &FLEET {
        assert_eq!(
            session_bytes(&workdir, tenant, id),
            session_bytes(&ref_dir, tenant, id),
            "lied {id} must heal byte-identically"
        );
    }
    let _ = std::fs::remove_dir_all(&workdir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

// ---------------------------------------------------------------------------
// Property: arbitrary fault schedules never abort the daemon, and a clean
// resume always heals to byte-identical artifacts.
// ---------------------------------------------------------------------------

const PROP_FLEET: [(&str, &str, u64); 2] = [("pf-1", "acme", 61), ("pf-2", "beta", 62)];

fn prop_jobs() -> Vec<JobSpec> {
    PROP_FLEET.iter().map(|(id, t, s)| job(id, t, *s)).collect()
}

type ByteMap = std::collections::BTreeMap<String, (Vec<u8>, Vec<u8>)>;

fn prop_reference() -> &'static ByteMap {
    static REF: OnceLock<ByteMap> = OnceLock::new();
    REF.get_or_init(|| {
        ensure_pool();
        let dir = tmp_dir("prop-ref");
        run_daemon_on(&dir, &batch(&prop_jobs(), &[]), Arc::new(RealVfs), 1).expect("reference");
        let map = PROP_FLEET
            .iter()
            .map(|(id, tenant, _)| (id.to_string(), session_bytes(&dir, tenant, id)))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        map
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_fault_schedule_heals_to_byte_identical(seed in 0u64..1u64 << 48, rate in 0.0f64..0.5) {
        ensure_pool();
        let reference = prop_reference();
        let workdir = tmp_dir(&format!("prop-{seed}"));
        let plan = StorageFaultPlan::new(seed, StorageFaultConfig::mixed(rate));
        // The faulty lifetime may quarantine anyone (and the daemon may
        // even fail its own spool write); it must never panic.
        let _ = run_daemon_on(
            &workdir,
            &batch(&prop_jobs(), &[]),
            Arc::new(FaultVfs::rooted(plan, &workdir)),
            4,
        );
        // The disk heals: one clean lifetime completes every session.
        let (summary, completed, quarantined) = run_split(
            &workdir,
            &batch(&prop_jobs(), &[]),
            Arc::new(RealVfs),
            4,
        );
        prop_assert_eq!(summary.sessions_quarantined, 0);
        prop_assert!(quarantined.is_empty());
        prop_assert_eq!(completed.len(), PROP_FLEET.len());
        for (id, tenant, _) in &PROP_FLEET {
            let got = session_bytes(&workdir, tenant, id);
            prop_assert_eq!(&got, &reference[*id], "session {} diverged", id);
        }
        let _ = std::fs::remove_dir_all(&workdir);
    }
}

// ---------------------------------------------------------------------------
// Trace rotation under a hostile disk: kill mid-rotation, heal, resume —
// segment concat stays byte-identical to the fault-free single-file trace.
// ---------------------------------------------------------------------------

/// One daemon lifetime with trace rotation at `cap` bytes per segment.
fn run_rotated_on(
    workdir: &Path,
    bytes: &[u8],
    vfs: Arc<dyn Vfs>,
    threads: usize,
    cap: u64,
    halt_after_rounds: Option<u64>,
) -> DaemonSummary {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = 2;
    config.quiet = true;
    config.vfs = vfs;
    config.trace_segment_bytes = Some(cap);
    config.halt_after_rounds = halt_after_rounds;
    // Transient-fault recipe: enough attempts that an eio(0.3) schedule
    // cannot permanently exhaust a session's retries.
    config.retry = simnet::faults::RetryPolicy {
        max_attempts: 10,
        base_delay: 1,
    };
    let mut daemon = Daemon::open(config).expect("open daemon");
    daemon.submit_bytes(bytes).expect("submit batch");
    rayon::with_max_threads(threads, || daemon.run()).expect("daemon run")
}

/// In-order concatenation of a session's rotated trace segments.
fn concat_trace(workdir: &Path, tenant: &str, id: &str) -> Vec<u8> {
    let dir = session_dir(workdir, tenant, id);
    let mut out = std::fs::read(dir.join("trace.jsonl")).unwrap_or_default();
    for i in 1usize.. {
        match std::fs::read(dir.join(format!("trace.{i:03}.jsonl"))) {
            Ok(seg) => out.extend_from_slice(&seg),
            Err(_) => break,
        }
    }
    out
}

#[test]
fn rotation_survives_kill_and_faults_across_threads() {
    ensure_pool();
    const CAP: u64 = 180;
    let ref_dir = tmp_dir("rotf-ref");
    run_daemon_on(&ref_dir, &batch(&fleet_jobs(), &[]), Arc::new(RealVfs), 1).expect("reference");

    for threads in [1usize, 4, 8] {
        let workdir = tmp_dir(&format!("rotf-{threads}"));
        // Lifetime 1: rotate under transient injected EIO, killed after
        // two rounds so sessions stop mid-rotation.
        let plan = StorageFaultPlan::new(97, StorageFaultConfig::eio(0.3));
        let summary = run_rotated_on(
            &workdir,
            &batch(&fleet_jobs(), &[]),
            Arc::new(FaultVfs::rooted(plan, &workdir)),
            threads,
            CAP,
            Some(2),
        );
        assert!(
            summary.io_faults_injected > 0,
            "adversary must actually fire (threads={threads})"
        );
        assert!(summary.halted_active > 0, "kill must land mid-flight");
        // Lifetime 2: the disk heals; resume re-derives segment
        // boundaries from durable lengths and finishes everything.
        let summary = run_rotated_on(&workdir, &[], Arc::new(RealVfs), threads, CAP, None);
        assert_eq!(summary.completed, FLEET.len());
        assert_eq!(summary.sessions_quarantined, 0);

        let mut rotated_somewhere = false;
        for (id, tenant, _) in &FLEET {
            let (ref_trace, ref_report) = session_bytes(&ref_dir, tenant, id);
            assert_eq!(
                concat_trace(&workdir, tenant, id),
                ref_trace,
                "rotated+faulted {id} concat differs at {threads} threads"
            );
            assert_eq!(
                std::fs::read(session_dir(&workdir, tenant, id).join("report.json"))
                    .expect("report.json"),
                ref_report
            );
            rotated_somewhere |= session_dir(&workdir, tenant, id)
                .join("trace.001.jsonl")
                .exists();
        }
        assert!(
            rotated_somewhere,
            "a {CAP}-byte cap must actually rotate (threads={threads})"
        );
        let _ = std::fs::remove_dir_all(&workdir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}
