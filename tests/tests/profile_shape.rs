//! Profile-shape parity between inline and pooled execution.
//!
//! The sequential fallbacks in the pool's `run_indexed` used to bypass
//! span emission entirely, so 1-thread sweeps in `PROFILE_grid.json`
//! structurally lacked pool phases and cross-thread-count comparisons
//! were apples-to-oranges. These tests pin the fix: a capped-to-1 run
//! (inline route) and a capped-to-4 run (pooled route) must both surface
//! `pool_queue_wait`, `pool_chunk`, and `pool_submit` spans.
//!
//! This lives in its own test binary because the phase profiler is
//! process-global: enabling it here must not race the other integration
//! suites, and `cargo test` runs each tests/*.rs file as its own process.

use mwu_core::prof;
use rayon::prelude::*;

/// Phases with at least one completed span after a `cap`-thread run.
fn phases_emitted(cap: usize) -> Vec<String> {
    prof::reset();
    rayon::with_max_threads(cap, || {
        let v: Vec<u64> = (0..4096u64).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v[17], 51);
    });
    prof::snapshot()
        .spans
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| s.phase.clone())
        .collect()
}

/// One test function on purpose: the profiler's enabled flag and span
/// store are process-global, and cargo runs `#[test]`s concurrently —
/// splitting the on/off halves into separate tests would race.
#[test]
fn inline_and_pooled_runs_emit_the_same_pool_phases() {
    assert!(rayon::set_num_threads(4), "pool already initialized");
    mwu_experiments::install_profile_hooks();

    // Profiling off: both routes must emit nothing at all.
    prof::set_enabled(false);
    for cap in [1usize, 4] {
        let phases = phases_emitted(cap);
        assert!(phases.is_empty(), "cap={cap} emitted {phases:?} while off");
    }

    // Profiling on: the inline (cap 1) and pooled (cap 4) routes must
    // surface the same pool phases.
    prof::set_enabled(true);
    let pooled = phases_emitted(4);
    let inline = phases_emitted(1);
    prof::set_enabled(false);
    for phase in ["pool_queue_wait", "pool_chunk", "pool_submit"] {
        assert!(
            pooled.iter().any(|p| p == phase),
            "pooled run missing {phase}: {pooled:?}"
        );
        assert!(
            inline.iter().any(|p| p == phase),
            "inline run missing {phase}: {inline:?}"
        );
    }
}
