//! Steady-state allocation audit for the MWU round kernels.
//!
//! A counting global allocator wraps the system allocator; after a warmup
//! phase (which is allowed to grow every scratch buffer to its steady-state
//! capacity) the counter is armed and each algorithm runs additional
//! plan → pull → update rounds. The assertion is exact: **zero** heap
//! allocations on the armed rounds, for every algorithm the round-kernel
//! refactor covers.
//!
//! Everything runs inside a single `#[test]` because a global allocator is
//! process-wide state: parallel test threads would alias the counter.

use mwu_core::alternatives::{Exp3, HedgeConfig, HedgeMwu};
use mwu_core::prelude::*;
use mwu_core::slate::SlateSampling;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts allocations while `ARMED`; delegates everything to [`System`].
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `rounds` plan → pull → update cycles against `bandit`, reusing a
/// preallocated rewards buffer so the harness itself allocates nothing.
fn run_rounds(
    alg: &mut dyn MwuAlgorithm,
    bandit: &mut ValueBandit,
    rewards: &mut Vec<f64>,
    rng: &mut SmallRng,
    rounds: usize,
) {
    for _ in 0..rounds {
        rewards.clear();
        {
            // `plan` borrows `alg` until the end of this block; pulling only
            // needs the bandit and the RNG, so the plan slice stays valid.
            let plan = alg.plan(rng);
            for &arm in plan {
                rewards.push(bandit.pull(arm, rng));
            }
        }
        alg.update(rewards, rng);
    }
}

/// Audit one algorithm: warmup unarmed (scratch grows to capacity), then
/// count allocations over the armed steady-state rounds.
fn audit(name: &str, alg: &mut dyn MwuAlgorithm, k: usize, warmup: usize, armed_rounds: usize) {
    let mut bandit = ValueBandit::exact(mwu_core::bandit::random_values(k, 9));
    let mut rng = SmallRng::seed_from_u64(7);
    // Capacity for the largest plan this algorithm can produce.
    let mut rewards: Vec<f64> = Vec::with_capacity(alg.cpus_per_iteration() * 2);

    run_rounds(alg, &mut bandit, &mut rewards, &mut rng, warmup);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    run_rounds(alg, &mut bandit, &mut rewards, &mut rng, armed_rounds);
    ARMED.store(false, Ordering::SeqCst);

    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "{name}: {count} heap allocations in {armed_rounds} steady-state rounds"
    );
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let k = 256;

    let mut standard = StandardMwu::new(k, StandardConfig::default());
    audit("standard", &mut standard, k, 200, 100);

    let mut slate = SlateMwu::new(k, SlateConfig::default());
    audit("slate", &mut slate, k, 200, 100);

    let mut slate_decomp = SlateMwu::new(
        k,
        SlateConfig {
            sampling: SlateSampling::ConvexDecomposition,
            ..SlateConfig::default()
        },
    );
    audit("slate-decomp", &mut slate_decomp, k, 50, 25);

    let mut distributed = DistributedMwu::new(64, DistributedConfig::default());
    audit("distributed", &mut distributed, 64, 100, 50);

    let mut hedge = HedgeMwu::new(k, HedgeConfig::default());
    audit("hedge", &mut hedge, k, 200, 100);

    let mut exp3 = Exp3::new(k, 0.05);
    audit("exp3", &mut exp3, k, 200, 100);
}
