//! Failure injection and edge-condition integration tests: the library's
//! behaviour at the boundaries a downstream user will eventually hit.

use apr_sim::{BugScenario, ScenarioKind};
use integration_tests::test_run_config;
use mwrepair::{repair_with_variant, MwRepairConfig, VariantChoice};
use mwu_core::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn all_zero_value_dataset_is_handled() {
    // Every arm worthless: algorithms must terminate (converged or capped)
    // without panicking, and accuracy is defined as 100 (no value to lose).
    let values = vec![0.0; 16];
    for variant in 0..3 {
        let mut bandit = ValueBandit::bernoulli(values.clone());
        let cfg = test_run_config(1);
        let out = match variant {
            0 => {
                let mut a = StandardMwu::new(16, StandardConfig::default());
                run_to_convergence(&mut a, &mut bandit, &cfg)
            }
            1 => {
                let mut a = SlateMwu::new(16, SlateConfig::default());
                run_to_convergence(&mut a, &mut bandit, &cfg)
            }
            _ => {
                let mut a = DistributedMwu::new(16, DistributedConfig::default());
                run_to_convergence(&mut a, &mut bandit, &cfg)
            }
        };
        assert!(out.iterations >= 1);
        assert!((out.accuracy(&values) - 100.0).abs() < 1e-9);
    }
}

#[test]
fn all_equal_values_any_leader_is_fully_accurate() {
    let values = vec![0.5; 32];
    let mut bandit = ValueBandit::bernoulli(values.clone());
    let mut alg = StandardMwu::new(32, StandardConfig::default());
    let out = run_to_convergence(&mut alg, &mut bandit, &test_run_config(2));
    assert!((out.accuracy(&values) - 100.0).abs() < 1e-9);
}

#[test]
fn two_arm_minimum_instances_work_everywhere() {
    let values = vec![0.2, 0.8];
    for seed in 0..3 {
        let mut bandit = ValueBandit::bernoulli(values.clone());
        let mut alg = SlateMwu::new(2, SlateConfig::default());
        assert_eq!(alg.slate_size(), 2); // slate covers the whole space
        let out = run_to_convergence(&mut alg, &mut bandit, &test_run_config(seed));
        assert_eq!(out.leader, 1);
    }
}

#[test]
fn out_of_range_rewards_are_clamped_not_fatal() {
    // A buggy environment handing rewards outside [0,1] must not poison
    // the weight vector.
    let mut alg = StandardMwu::new(4, StandardConfig::default());
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..100 {
        let _ = alg.plan(&mut rng);
        alg.update(&[-5.0, 0.5, 7.0, f64::MAX], &mut rng);
    }
    let p = alg.probabilities();
    assert!(p.iter().all(|x| x.is_finite() && *x >= 0.0));
    assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // The (clamped) best arm dominates.
    assert!(alg.leader() == 2 || alg.leader() == 3);
}

#[test]
fn unrepairable_scenario_returns_null_not_panic() {
    // Fig. 6 returns null when the budget expires without a repair.
    let s = BugScenario::custom("hopeless", ScenarioKind::Synthetic, 30, 8, 200, 10, 0.0, 5);
    let pool = s.build_pool(1, None);
    let cfg = MwRepairConfig {
        max_iterations: 50,
        seed: 4,
        reward: mwrepair::RewardMode::DensityProxy,
        max_composition: 512,
    };
    let out = repair_with_variant(&s, &pool, VariantChoice::Slate, &cfg, None).unwrap();
    assert!(!out.is_repaired());
    assert_eq!(out.iterations, 50);
    assert!(out.probes > 0);
}

#[test]
fn repair_patch_materializes_into_a_concrete_mutant() {
    let s = BugScenario::custom(
        "materialize",
        ScenarioKind::Synthetic,
        40,
        10,
        300,
        12,
        0.05,
        6,
    );
    let pool = s.build_pool(1, None);
    let out = repair_with_variant(
        &s,
        &pool,
        VariantChoice::Standard,
        &MwRepairConfig::seeded(7),
        None,
    )
    .unwrap();
    let patch = out.repair.expect("repairable scenario");
    let mutant = patch.materialize(&s);
    // Every edit of the composition resolved against the original program.
    assert_eq!(mutant.applied + mutant.skipped, patch.mutations.len());
    assert!(mutant.applied >= 1);
    assert!(!mutant.is_empty());
}

#[test]
fn tiny_population_override_still_sound() {
    // A caller forcing a minimal population must still get a working
    // protocol (counts consistent, convergence achievable on easy input).
    let cfg = DistributedConfig {
        pop_size: Some(16),
        ..DistributedConfig::default()
    };
    let mut values = vec![0.05; 8];
    values[3] = 0.95;
    let mut alg = DistributedMwu::try_new(8, cfg).unwrap();
    assert_eq!(alg.population(), 16);
    let mut bandit = ValueBandit::bernoulli(values);
    let out = run_to_convergence(&mut alg, &mut bandit, &test_run_config(8));
    let total: u32 = alg.counts().iter().sum();
    assert_eq!(total as usize, 16);
    assert!(out.iterations >= 1);
}

#[test]
fn max_composition_one_limits_probes_to_single_mutations() {
    let s = BugScenario::custom("maxcomp", ScenarioKind::Synthetic, 30, 8, 200, 10, 0.05, 9);
    let pool = s.build_pool(1, None);
    let cfg = MwRepairConfig {
        max_iterations: 300,
        seed: 1,
        reward: mwrepair::RewardMode::DensityProxy,
        max_composition: 1,
    };
    let out = repair_with_variant(&s, &pool, VariantChoice::Standard, &cfg, None).unwrap();
    // One arm only: every probe composes exactly one mutation.
    if let Some(patch) = out.repair {
        assert_eq!(patch.mutations.len(), 1);
    }
    assert_eq!(out.leader_arm, 1);
}

#[test]
fn dataset_csv_round_trip_through_disk() {
    // io persistence path under a real filesystem.
    let d = mwu_datasets::catalog::by_name("unimodal64").unwrap();
    let dir = std::env::temp_dir().join("mwu_failure_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("d.csv");
    std::fs::write(&path, mwu_datasets::io::dataset_to_csv(&d)).unwrap();
    let back = mwu_datasets::io::dataset_from_csv(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back.name, d.name);
    assert_eq!(back.values.len(), d.values.len());
    let _ = std::fs::remove_dir_all(&dir);
}
