//! Integration: the three MWU variants against the §IV-A dataset catalog.

use integration_tests::{test_run_config, test_seed};
use mwu_core::prelude::*;
use mwu_datasets::{catalog, full_catalog, Family};

fn run_variant(name: &str, dataset: &mwu_datasets::Dataset, seed: u64) -> Option<RunOutcome> {
    let k = dataset.size();
    let cfg = test_run_config(seed);
    let mut bandit = dataset.bandit();
    Some(match name {
        "standard" => {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            run_to_convergence(&mut alg, &mut bandit, &cfg)
        }
        "slate" => {
            let mut alg = SlateMwu::new(k, SlateConfig::default());
            run_to_convergence(&mut alg, &mut bandit, &cfg)
        }
        "distributed" => {
            let mut alg = DistributedMwu::try_new(k, DistributedConfig::default()).ok()?;
            run_to_convergence(&mut alg, &mut bandit, &cfg)
        }
        other => panic!("unknown variant {other}"),
    })
}

#[test]
fn all_variants_exceed_90_percent_accuracy_on_small_datasets() {
    // The paper's headline: "the mean accuracy of each algorithm is always
    // at least 90%." Checked here on the small catalog instances (the full
    // grid is the table2/3/4 binaries' job).
    for dataset in full_catalog()
        .into_iter()
        .filter(|d| d.size() <= 256 || d.family == Family::Java)
    {
        for variant in ["standard", "distributed", "slate"] {
            let mut acc_sum = 0.0;
            let reps = 5;
            for rep in 0..reps {
                let out = run_variant(variant, &dataset, test_seed(1, rep))
                    .expect("small instances are tractable");
                acc_sum += dataset.accuracy_of(out.leader);
            }
            let mean = acc_sum / reps as f64;
            assert!(
                mean >= 90.0,
                "{variant} on {}: mean accuracy {mean:.1}% < 90%",
                dataset.name
            );
        }
    }
}

#[test]
fn distributed_is_fastest_in_update_cycles_on_random64() {
    let d = catalog::by_name("random64").unwrap();
    let mut iters = std::collections::HashMap::new();
    for variant in ["standard", "distributed", "slate"] {
        let mut total = 0usize;
        for rep in 0..5 {
            total += run_variant(variant, &d, test_seed(2, rep))
                .unwrap()
                .iterations;
        }
        iters.insert(variant, total);
    }
    assert!(
        iters["distributed"] < iters["standard"],
        "distributed {} !< standard {}",
        iters["distributed"],
        iters["standard"]
    );
    assert!(
        iters["distributed"] < iters["slate"],
        "distributed {} !< slate {}",
        iters["distributed"],
        iters["slate"]
    );
}

#[test]
fn slate_needs_the_most_update_cycles() {
    // "It is always the most expensive algorithm in terms of number of
    // iterations until convergence."
    for name in ["random64", "unimodal64", "lighttpd-1806-1807"] {
        let d = catalog::by_name(name).unwrap();
        let mut iters = std::collections::HashMap::new();
        for variant in ["standard", "distributed", "slate"] {
            let mut total = 0usize;
            for rep in 0..3 {
                total += run_variant(variant, &d, test_seed(3, rep))
                    .unwrap()
                    .iterations;
            }
            iters.insert(variant, total);
        }
        assert!(
            iters["slate"] >= iters["standard"] && iters["slate"] >= iters["distributed"],
            "{name}: slate {} vs standard {} vs distributed {}",
            iters["slate"],
            iters["standard"],
            iters["distributed"]
        );
    }
}

#[test]
fn distributed_intractable_exactly_at_the_largest_sizes() {
    // "the exponential dependence of the population size on the scenario
    // size led to two intractable computations" — random16384 and
    // unimodal16384.
    let mut intractable = Vec::new();
    for d in full_catalog() {
        if DistributedMwu::try_new(d.size(), DistributedConfig::default()).is_err() {
            intractable.push(d.name.clone());
        }
    }
    assert_eq!(intractable, vec!["random16384", "unimodal16384"]);
}

#[test]
fn standard_cpu_cost_scales_with_k_times_iterations() {
    for name in ["random64", "unimodal256"] {
        let d = catalog::by_name(name).unwrap();
        let out = run_variant("standard", &d, test_seed(4, 0)).unwrap();
        assert_eq!(
            out.cpu_iterations,
            (out.iterations * d.size()) as u64,
            "{name}: cpu-iterations accounting"
        );
    }
}

#[test]
fn distributed_congestion_far_below_standard_on_same_dataset() {
    let d = catalog::by_name("random256").unwrap();
    let std_out = run_variant("standard", &d, test_seed(5, 0)).unwrap();
    let dist_out = run_variant("distributed", &d, test_seed(5, 0)).unwrap();
    // Standard synchronizes all k agents; Distributed pays balls-into-bins.
    assert_eq!(std_out.comm.peak_congestion, 256);
    assert!(
        dist_out.comm.peak_congestion < 32,
        "distributed congestion {}",
        dist_out.comm.peak_congestion
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let d = catalog::by_name("Closure13").unwrap();
    for variant in ["standard", "distributed", "slate"] {
        let a = run_variant(variant, &d, 777).unwrap();
        let b = run_variant(variant, &d, 777).unwrap();
        assert_eq!(a.iterations, b.iterations, "{variant}");
        assert_eq!(a.leader, b.leader, "{variant}");
        assert_eq!(a.comm, b.comm, "{variant}");
    }
}

#[test]
fn catalog_apr_datasets_peak_at_scenario_optima() {
    use apr_sim::BugScenario;
    for s in BugScenario::catalog_all() {
        let d = catalog::by_name(&s.name).expect("dataset for scenario");
        assert_eq!(d.best_arm() + 1, s.density_optimum(), "{}", s.name);
    }
}
