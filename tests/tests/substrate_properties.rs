//! Property-based tests over the APR substrate's newer modules: structural
//! patch application, fault localization, early-exit evaluation, and the
//! Hedge/Standard relationship.

use apr_sim::apply::apply_mutations;
use apr_sim::mutation::{MutOp, Mutation};
use apr_sim::prioritize::{evaluate_early_exit, TestOrder};
use apr_sim::program::Program;
use apr_sim::suite::TestSuite;
use apr_sim::{evaluate_composition, BugScenario, ScenarioKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_mutation(n_statements: usize) -> impl Strategy<Value = Mutation> {
    (0usize..4, 0..n_statements, 0..n_statements).prop_map(|(op, site, donor)| {
        let ops = [MutOp::Delete, MutOp::Insert, MutOp::Swap, MutOp::Replace];
        let op = ops[op];
        Mutation {
            op,
            site,
            donor: if op == MutOp::Delete { site } else { donor },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_length_accounting_is_exact(
        muts in prop::collection::vec(arb_mutation(30), 0..12),
        seed in 0u64..50,
    ) {
        let program = Program::synthetic("prop-apply", 30, seed);
        let mutant = apply_mutations(&program, &muts);
        prop_assert_eq!(mutant.applied + mutant.skipped, muts.len());
        // Length change = applied inserts − applied deletes. Count them by
        // replaying the same skip rules via a second application (the
        // operation is deterministic).
        let again = apply_mutations(&program, &muts);
        prop_assert_eq!(&mutant, &again, "apply is not deterministic");
        // Length is bounded by the extreme cases.
        prop_assert!(mutant.len() <= program.len() + muts.len());
        prop_assert!(mutant.len() + muts.len() >= program.len());
    }

    #[test]
    fn apply_skips_never_panic_and_tokens_come_from_program(
        muts in prop::collection::vec(arb_mutation(12), 0..20),
    ) {
        let program = Program::synthetic("prop-apply2", 12, 3);
        let mutant = apply_mutations(&program, &muts);
        let original: std::collections::HashSet<u32> =
            program.statements.iter().map(|s| s.token).collect();
        for t in mutant.tokens() {
            prop_assert!(original.contains(&t), "token {t} not from the program");
        }
    }

    #[test]
    fn early_exit_never_costs_more_than_full_suite(
        x in 1usize..40,
        seed in 0u64..30,
    ) {
        let s = BugScenario::custom("prop-exit", ScenarioKind::Synthetic, 50, 10, 300, 20, 0.0, 17)
            .with_pool_size(200);
        let pool = s.build_pool(2, None);
        let mut rng = SmallRng::seed_from_u64(seed);
        let comp = pool.sample_composition(x.min(pool.len()), &mut rng);
        for order in [TestOrder::SuiteOrder, TestOrder::CheapestFirst] {
            let early = evaluate_early_exit(&s.world, &s.suite, order, &comp, None);
            let full = evaluate_composition(&s.world, &s.suite, &comp, None);
            prop_assert!(early.cost_ms <= full.cost_ms);
            prop_assert_eq!(early.survived, full.survived);
            prop_assert_eq!(early.repaired, full.repaired);
            prop_assert_eq!(early.fitness, full.fitness);
        }
    }

    #[test]
    fn localization_scores_bounded_and_rank_consistent(
        n_statements in 20usize..80,
        n_tests in 5usize..25,
        seed in 0u64..30,
    ) {
        use apr_sim::{localize, Formula};
        let program = Program::synthetic("prop-loc", n_statements, seed);
        let suite = TestSuite::synthetic(n_tests, 1, seed);
        for formula in [Formula::Tarantula, Formula::Ochiai] {
            let loc = localize(&program, &suite, formula);
            prop_assert!(loc.scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
            let ranked = loc.ranked_sites();
            // Scores are non-increasing along the ranking.
            for w in ranked.windows(2) {
                prop_assert!(loc.score(w[0]) >= loc.score(w[1]) - 1e-12);
            }
            // rank_of agrees with position in ranked_sites.
            let probe = ranked[ranked.len() / 2];
            prop_assert_eq!(loc.rank_of(probe), ranked.len() / 2);
        }
    }

    #[test]
    fn hedge_and_standard_agree_under_full_information(
        seed in 0u64..40,
    ) {
        // Hedge over gains and Standard over costs are the same
        // multiplicative-weights family; with the same clear-winner input
        // they must elect the same leader.
        use mwu_core::alternatives::{HedgeConfig, HedgeMwu};
        use mwu_core::prelude::*;
        let mut values = vec![0.1; 10];
        values[6] = 0.9;

        let mut std_alg = StandardMwu::new(10, StandardConfig::default());
        let mut bandit = ValueBandit::bernoulli(values.clone());
        let std_out = run_to_convergence(
            &mut std_alg,
            &mut bandit,
            &RunConfig::seeded(seed).with_max_iterations(2000),
        );

        let mut hedge_alg = HedgeMwu::new(10, HedgeConfig::default());
        let mut bandit = ValueBandit::bernoulli(values);
        let hedge_out = run_to_convergence(
            &mut hedge_alg,
            &mut bandit,
            &RunConfig::seeded(seed).with_max_iterations(2000),
        );

        prop_assert_eq!(std_out.leader, 6);
        prop_assert_eq!(hedge_out.leader, 6);
    }
}
