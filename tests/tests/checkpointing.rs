//! Integration: algorithm state checkpointing (serde round trips).
//!
//! Long repair campaigns need to survive restarts; every algorithm's state
//! serializes, and a resumed run continues *exactly* where the original
//! left off (same plans, same updates) given the same RNG stream.

use mwu_core::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Max elementwise difference between two probability vectors.
fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Drive `alg` for `n` cycles against `bandit`, returning its final state.
fn drive<A: MwuAlgorithm>(alg: &mut A, bandit: &mut ValueBandit, n: usize, rng: &mut SmallRng) {
    for _ in 0..n {
        let plan = alg.plan(rng).to_vec();
        let rewards: Vec<f64> = plan.iter().map(|&a| bandit.pull(a, rng)).collect();
        alg.update(&rewards, rng);
    }
}

fn values() -> Vec<f64> {
    mwu_core::bandit::random_values(24, 5)
}

#[test]
fn standard_checkpoint_resumes_identically() {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut bandit = ValueBandit::bernoulli(values());
    let mut alg = StandardMwu::new(24, StandardConfig::default());
    drive(&mut alg, &mut bandit, 50, &mut rng);

    // Checkpoint mid-run (algorithm + bandit + RNG state via JSON for the
    // algorithm; the RNG stream is re-created from a continuation seed in a
    // real deployment — here we clone to model a perfect snapshot).
    let snapshot = serde_json::to_string(&alg).expect("serialize");
    let mut resumed: StandardMwu = serde_json::from_str(&snapshot).expect("deserialize");

    let mut rng_a = SmallRng::seed_from_u64(2);
    let mut rng_b = SmallRng::seed_from_u64(2);
    let mut bandit_a = ValueBandit::bernoulli(values());
    let mut bandit_b = ValueBandit::bernoulli(values());
    drive(&mut alg, &mut bandit_a, 30, &mut rng_a);
    drive(&mut resumed, &mut bandit_b, 30, &mut rng_b);

    assert_eq!(alg.leader(), resumed.leader());
    // JSON float encoding may lose the last ulp; the resumed trajectory
    // stays within numerical noise of the original.
    assert!(max_diff(&alg.probabilities(), &resumed.probabilities()) < 1e-9);
    assert_eq!(alg.has_converged(), resumed.has_converged());
}

#[test]
fn slate_checkpoint_round_trips() {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut bandit = ValueBandit::bernoulli(values());
    let mut alg = SlateMwu::new(24, SlateConfig::default());
    drive(&mut alg, &mut bandit, 100, &mut rng);

    let snapshot = serde_json::to_string(&alg).unwrap();
    let resumed: SlateMwu = serde_json::from_str(&snapshot).unwrap();
    assert!(max_diff(&alg.probabilities(), &resumed.probabilities()) < 1e-12);
    assert_eq!(alg.slate_size(), resumed.slate_size());
    assert!((alg.leader_share() - resumed.leader_share()).abs() < 1e-12);
}

#[test]
fn distributed_checkpoint_preserves_population() {
    let mut rng = SmallRng::seed_from_u64(4);
    let mut bandit = ValueBandit::bernoulli(values());
    let mut alg = DistributedMwu::new(24, DistributedConfig::default());
    drive(&mut alg, &mut bandit, 20, &mut rng);

    let snapshot = serde_json::to_string(&alg).unwrap();
    let resumed: DistributedMwu = serde_json::from_str(&snapshot).unwrap();
    assert_eq!(alg.counts(), resumed.counts());
    assert_eq!(alg.population(), resumed.population());
    assert_eq!(alg.comm_stats(), resumed.comm_stats());
}

#[test]
fn sequential_strategies_checkpoint() {
    use mwu_core::alternatives::{EpsilonGreedy, Ucb1};
    let mut rng = SmallRng::seed_from_u64(5);
    let mut bandit = ValueBandit::bernoulli(values());

    let mut eg = EpsilonGreedy::new(24, 0.05);
    drive(&mut eg, &mut bandit, 200, &mut rng);
    let back: EpsilonGreedy = serde_json::from_str(&serde_json::to_string(&eg).unwrap()).unwrap();
    assert!(max_diff(&eg.probabilities(), &back.probabilities()) < 1e-12);

    let mut ucb = Ucb1::new(24);
    drive(&mut ucb, &mut bandit, 200, &mut rng);
    let back: Ucb1 = serde_json::from_str(&serde_json::to_string(&ucb).unwrap()).unwrap();
    assert_eq!(ucb.leader(), back.leader());
}

#[test]
fn scenario_and_pool_serialize_for_distribution() {
    // Scenarios and pools are the shareable artifacts of the precompute
    // phase ("reuse mutations for multiple bug repairs"): both must
    // serialize so a pool built on one machine can be shipped to others.
    use apr_sim::{BugScenario, MutationPool};
    let s = BugScenario::by_name("Math80").unwrap();
    let pool = s.build_pool(9, None);

    let s_json = serde_json::to_string(&s).unwrap();
    let s_back: BugScenario = serde_json::from_str(&s_json).unwrap();
    assert_eq!(s_back.name, s.name);
    assert!(max_diff(&s_back.value_distribution(), &s.value_distribution()) < 1e-12);

    let p_json = serde_json::to_string(&pool).unwrap();
    let p_back: MutationPool = serde_json::from_str(&p_json).unwrap();
    assert_eq!(p_back, pool);
}
