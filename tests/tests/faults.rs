//! Fault-injection and crash-safety integration tests.
//!
//! Covers the robustness contract end to end:
//!
//! * same seed + same `FaultPlan` ⇒ byte-identical JSONL telemetry traces;
//! * a killed-and-resumed MWRepair run reports exactly the outcome of the
//!   uninterrupted same-seed run (checkpoint through a real file);
//! * Distributed MWU still converges on a unimodal instance with ≤ 10 %
//!   message drops flowing through the degradation-aware gossip update;
//! * property tests: weights stay on the finite simplex under arbitrary
//!   drop / duplicate / corruption sequences.

use apr_sim::{BugScenario, ScenarioKind};
use bytes::Bytes;
use mwrepair::{
    effective_arms, repair, repair_resumable, Checkpoint, CheckpointPolicy, MwRepairConfig,
    SessionControl, SessionResult,
};
use mwu_core::prelude::*;
use mwu_core::trace::FaultEvent;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::{Context, FaultConfig, FaultPlan, MessageFate, Network, RetryPolicy};

/// A gossiping agent workload under a mixed fault plan; returns the JSONL
/// bytes of the run's per-round fault telemetry.
fn faulty_net_trace(seed: u64, rounds: usize) -> Vec<u8> {
    let mut net = Network::new(6, seed);
    net.set_faults(FaultPlan::new(seed ^ 0xFA, FaultConfig::mixed(0.15)));
    net.set_retry(RetryPolicy::default());
    for _ in 0..6 {
        net.add_agent(|ctx: &mut Context<'_>| {
            use rand::Rng;
            let n = ctx.n_agents();
            let to = ctx.rng().gen_range(0..n);
            if to != ctx.id() {
                ctx.send(to, Bytes::from_static(b"gossip"));
            }
        });
    }
    let mut sink = JsonlSink::new(Vec::new());
    for _ in 0..rounds {
        let rs = net.step();
        sink.on_faults(FaultEvent {
            round: rs.round,
            dropped: rs.faults.dropped,
            delayed: rs.faults.delayed,
            duplicated: rs.faults.duplicated,
            reordered: rs.faults.reordered,
            crashed: rs.faults.crashed,
            lost_to_crash: rs.faults.lost_to_crash,
            retried: rs.faults.retried,
            retry_exhausted: rs.faults.retry_exhausted,
            stragglers: rs.faults.stragglers,
        });
    }
    sink.into_inner()
}

#[test]
fn same_seed_same_plan_gives_byte_identical_jsonl_traces() {
    let a = faulty_net_trace(77, 50);
    let b = faulty_net_trace(77, 50);
    assert!(!a.is_empty());
    assert_eq!(a, b, "fault telemetry must be bit-deterministic");
    // And the trace really records injected faults, not all-zero rows.
    let text = String::from_utf8(a).unwrap();
    assert!(text.contains("\"Faults\""));
    let c = faulty_net_trace(78, 50);
    assert_ne!(
        text.as_bytes(),
        c.as_slice(),
        "different seed, different trace"
    );
}

#[test]
fn killed_and_resumed_repair_matches_uninterrupted_run() {
    // Repair-free scenario: the run spans the whole horizon, so the kill
    // point sits strictly inside the learning trajectory.
    let scenario = BugScenario::custom(
        "chaos-resume",
        ScenarioKind::Synthetic,
        60,
        12,
        300,
        15,
        0.0,
        41,
    );
    let pool = scenario.build_pool(1, None);
    let config = MwRepairConfig {
        max_iterations: 80,
        seed: 23,
        reward: mwrepair::RewardMode::DensityProxy,
        max_composition: 512,
    };
    let arms = effective_arms(pool.len(), &config);

    let mut alg = StandardMwu::new(arms, StandardConfig::default());
    let uninterrupted = repair(&scenario, &pool, &mut alg, &config);

    // Checkpoint into a *nested* directory so the durable write path
    // (tmp + fsync + rename + parent-directory fsync) runs against the
    // deepest parent, not the temp root.
    let dir = std::env::temp_dir().join(format!("faults-it-{}", std::process::id()));
    let ckpt_dir = dir.join("ckpts").join("run-a");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let ckpt_path = ckpt_dir.join("repair.ckpt");

    // Session 1: checkpoint every 64 probes, "killed" after 30 cycles.
    let mut alg1 = StandardMwu::new(arms, StandardConfig::default());
    let halted = repair_resumable(
        &scenario,
        &pool,
        &mut alg1,
        &config,
        None,
        &mut NullObserver,
        &SessionControl {
            checkpoint: Some(CheckpointPolicy::new(&ckpt_path, 64)),
            halt_after_iterations: Some(30),
        },
        None,
    )
    .unwrap();
    assert!(matches!(halted, SessionResult::Halted { .. }));

    // The "kill" leaves a durable, complete checkpoint and nothing else:
    // in particular no `.tmp` staging file that a crash mid-write could
    // have stranded.
    let leftovers: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(leftovers, vec!["repair.ckpt"], "only the checkpoint itself");

    // Session 2: resume purely from the file, run to completion.
    let ck = Checkpoint::load(&ckpt_path).unwrap();
    assert_eq!(ck.iteration, 30);
    let mut alg2 = StandardMwu::new(arms, StandardConfig::default());
    let resumed = repair_resumable(
        &scenario,
        &pool,
        &mut alg2,
        &config,
        None,
        &mut NullObserver,
        &SessionControl::default(),
        Some(&ck),
    )
    .unwrap()
    .outcome()
    .expect("resumed session runs to completion");

    assert_eq!(resumed, uninterrupted);
    // Byte-identity of the reported outcome, not just structural equality.
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&uninterrupted).unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Feed one gossip round through the degraded-observation path: drops
/// become missing observations, delays become staleness, duplicates arrive
/// twice.
fn degraded_gossip_round(
    alg: &mut DistributedMwu,
    bandit: &mut ValueBandit,
    plan: &FaultPlan,
    gossip: &GossipConfig,
    t: usize,
    rng: &mut SmallRng,
) {
    let planned = alg.plan(rng).to_vec();
    let mut obs = Vec::with_capacity(planned.len());
    for (agent, &arm) in planned.iter().enumerate() {
        let reward = bandit.pull(arm, rng);
        match plan.message_fate(t, agent, 0, agent as u64, 1) {
            MessageFate::Drop => {}
            MessageFate::Deliver => obs.push(GossipObservation::fresh(agent, reward)),
            MessageFate::Delay(d) => obs.push(GossipObservation {
                agent,
                reward,
                staleness: d,
            }),
            MessageFate::Duplicate => {
                obs.push(GossipObservation::fresh(agent, reward));
                obs.push(GossipObservation::fresh(agent, reward));
            }
        }
    }
    alg.update_gossip(&obs, gossip, rng);
}

#[test]
fn distributed_converges_on_unimodal_with_ten_percent_drops() {
    let k = 16;
    let values = mwu_datasets::unimodal::generate(k, 9);
    let best = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let gossip = GossipConfig::default();
    let mut converged_runs = 0;
    let mut accurate_runs = 0;
    const RUNS: usize = 5;
    for seed in 0..RUNS as u64 {
        let mut alg = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
        let mut bandit = ValueBandit::bernoulli(values.clone());
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let plan = FaultPlan::new(200 + seed, FaultConfig::drops(0.10));
        for t in 0..3000 {
            degraded_gossip_round(&mut alg, &mut bandit, &plan, &gossip, t, &mut rng);
            let probs = alg.probabilities();
            assert!(probs.iter().all(|p| p.is_finite()));
            if alg.has_converged() {
                break;
            }
        }
        if alg.has_converged() {
            converged_runs += 1;
            // Converging near the optimum (within a small neighborhood of
            // the unimodal peak) counts as accurate.
            if alg.leader().abs_diff(best) <= 2 {
                accurate_runs += 1;
            }
        }
    }
    assert_eq!(
        converged_runs, RUNS,
        "10% drops must not prevent convergence"
    );
    assert!(
        accurate_runs * 2 >= RUNS,
        "most runs should land near the unimodal peak ({accurate_runs}/{RUNS})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Standard MWU: arbitrary per-agent drop/corrupt patterns keep the
    // weight vector a finite probability distribution.
    #[test]
    fn standard_simplex_survives_arbitrary_fault_patterns(
        seed in 0u64..1000,
        faults in prop::collection::vec(0u8..4, 8..40),
    ) {
        let k = 8;
        let mut alg = StandardMwu::new(k, StandardConfig::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        for chunk in faults.chunks(k) {
            let n = alg.plan(&mut rng).len();
            let rewards: Vec<f64> = (0..n)
                .map(|j| match chunk.get(j % chunk.len()) {
                    Some(0) => 0.0,           // dropped
                    Some(1) => f64::NAN,      // corrupted
                    Some(2) => 1e12,          // garbled huge
                    _ => 0.7,                 // delivered
                })
                .collect();
            alg.update(&rewards, &mut rng);
            let probs = alg.probabilities();
            let sum: f64 = probs.iter().sum();
            prop_assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    // Distributed gossip: arbitrary drop/duplicate/staleness mixes keep
    // the population shares a finite distribution that sums to 1 and the
    // population count conserved.
    #[test]
    fn gossip_population_survives_arbitrary_degradation(
        seed in 0u64..1000,
        fates in prop::collection::vec(0u8..5, 4..32),
    ) {
        let k = 4;
        let mut alg = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
        let pop = alg.cpus_per_iteration();
        let gossip = GossipConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        for (round, window) in fates.windows(3).enumerate() {
            let planned = alg.plan(&mut rng).to_vec();
            let mut obs = Vec::new();
            for (agent, &arm) in planned.iter().enumerate() {
                let fate = window[agent % window.len()];
                let reward = match fate {
                    3 => f64::NAN,
                    4 => -1e9,
                    _ => (arm as f64 + 1.0) / (k as f64),
                };
                match fate {
                    0 => {} // dropped
                    1 => {
                        obs.push(GossipObservation::fresh(agent, reward));
                        obs.push(GossipObservation::fresh(agent, reward));
                    }
                    2 => obs.push(GossipObservation {
                        agent,
                        reward,
                        staleness: (round % 9) as u32,
                    }),
                    _ => obs.push(GossipObservation::fresh(agent, reward)),
                }
            }
            alg.update_gossip(&obs, &gossip, &mut rng);
            let probs = alg.probabilities();
            let sum: f64 = probs.iter().sum();
            prop_assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert_eq!(alg.cpus_per_iteration(), pop);
        }
    }
}
