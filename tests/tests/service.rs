//! Integration: the `mwrepaird` determinism contract (docs/SERVICE.md).
//!
//! A session's JSONL trace and final report are a pure function of its
//! `JobSpec` and the daemon's slice length. These tests pin the contract
//! byte-for-byte in every configuration the service promises:
//!
//! * solo vs. surrounded by 100+ other tenants' sessions, at 1/4/8
//!   threads (`solo_vs_concurrent_*`);
//! * across cooperative kills and checkpoint resumes under load, torn
//!   trace writes included (`kill_resume_under_load_*`);
//! * under tenant budget exhaustion — the halted tenant gets a
//!   `BudgetExhausted` report with a resumable checkpoint, and every other
//!   tenant's bytes are untouched (`budget_exhaustion_*`);
//!
//! plus property tests that the JSONL job protocol round-trips and that
//! no input — malformed, truncated, or arbitrary byte noise — can panic
//! the parser.

use mwrepair::VariantChoice;
use mwrepair_service::{
    encode_line, parse_jobs, parse_line, BudgetSpec, Daemon, DaemonConfig, DaemonSummary, JobLine,
    JobSpec, ProtocolError, ScenarioSpec,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// All tests sweep `rayon::with_max_threads(1..=8)`, so the shared pool
/// must be sized once at the largest count (the container may report a
/// single CPU). Only the first call can win; later calls are no-ops.
fn ensure_pool() {
    rayon::set_num_threads(8);
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwrd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario(world_seed: u64) -> ScenarioSpec {
    ScenarioSpec::Synthetic {
        name: format!("svc-it-{world_seed}"),
        options: 20,
        x_star: 5,
        statements: 180,
        tests: 9,
        repair_rate: 0.0,
        world_seed,
        pool_size: Some(20),
    }
}

fn job(id: &str, tenant: &str, seed: u64) -> JobSpec {
    JobSpec {
        id: id.into(),
        tenant: tenant.into(),
        scenario: scenario(3),
        algorithm: VariantChoice::Standard,
        seed,
        max_iterations: 12,
    }
}

fn batch(jobs: &[JobSpec], budgets: &[BudgetSpec]) -> Vec<u8> {
    let mut doc = String::new();
    for b in budgets {
        doc.push_str(&encode_line(&JobLine::Budget(b.clone())));
        doc.push('\n');
    }
    for j in jobs {
        doc.push_str(&encode_line(&JobLine::Job(j.clone())));
        doc.push('\n');
    }
    doc.into_bytes()
}

/// Open a daemon over `workdir`, submit `bytes`, and run it capped at
/// `threads` workers.
fn run_daemon(
    workdir: &Path,
    bytes: &[u8],
    slice: usize,
    halt_after_rounds: Option<u64>,
    threads: usize,
) -> DaemonSummary {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = slice;
    config.halt_after_rounds = halt_after_rounds;
    config.quiet = true;
    let mut daemon = Daemon::open(config).expect("open daemon");
    daemon.submit_bytes(bytes).expect("submit batch");
    rayon::with_max_threads(threads, || daemon.run()).expect("daemon run")
}

/// Resume a daemon purely from its spool (no resubmission).
fn resume_daemon(
    workdir: &Path,
    slice: usize,
    halt_after_rounds: Option<u64>,
    threads: usize,
) -> DaemonSummary {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = slice;
    config.halt_after_rounds = halt_after_rounds;
    config.quiet = true;
    let mut daemon = Daemon::open(config).expect("reopen daemon");
    rayon::with_max_threads(threads, || daemon.run()).expect("daemon run")
}

fn session_bytes(workdir: &Path, tenant: &str, id: &str) -> (Vec<u8>, Vec<u8>) {
    let dir = workdir.join("tenants").join(tenant).join(id);
    let trace = std::fs::read(dir.join("trace.jsonl")).expect("trace.jsonl");
    let report = std::fs::read(dir.join("report.json")).expect("report.json");
    (trace, report)
}

// ---------------------------------------------------------------------------
// Determinism contract: solo vs. 100+ concurrent tenants, across threads.
// ---------------------------------------------------------------------------

#[test]
fn solo_vs_concurrent_tenants_across_thread_counts() {
    ensure_pool();
    const SLICE: usize = 4;
    let target = job("target-job", "target-tenant", 42);

    // Reference: the target session alone in its own work directory.
    let solo_dir = tmp_dir("solo");
    run_daemon(
        &solo_dir,
        &batch(std::slice::from_ref(&target), &[]),
        SLICE,
        None,
        8,
    );
    let reference = session_bytes(&solo_dir, "target-tenant", "target-job");
    std::fs::remove_dir_all(&solo_dir).unwrap();

    // Crowd: the same job surrounded by 104 other tenants' sessions with
    // a mix of variants, seeds, and iteration caps.
    let mut jobs = vec![target];
    for i in 0..104u64 {
        let mut j = job(
            &format!("bg-job-{i:03}"),
            &format!("bg-tenant-{i:03}"),
            1000 + i,
        );
        j.algorithm = if i % 3 == 0 {
            VariantChoice::Slate
        } else {
            VariantChoice::Standard
        };
        j.max_iterations = 6 + (i as usize % 13);
        jobs.push(j);
    }
    let crowd = batch(&jobs, &[]);

    for threads in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("crowd-{threads}"));
        let summary = run_daemon(&dir, &crowd, SLICE, None, threads);
        assert_eq!(summary.sessions, 105);
        assert_eq!(summary.completed, 105);
        let got = session_bytes(&dir, "target-tenant", "target-job");
        assert_eq!(
            got, reference,
            "target session bytes changed with 104 concurrent tenants at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Kill / resume under load.
// ---------------------------------------------------------------------------

#[test]
fn kill_resume_under_load_is_byte_identical() {
    ensure_pool();
    const SLICE: usize = 3;
    let jobs: Vec<JobSpec> = (0..24u64)
        .map(|i| {
            let mut j = job(
                &format!("kr-job-{i:02}"),
                &format!("kr-t{:02}", i % 6),
                7 + i,
            );
            j.max_iterations = 10 + (i as usize % 7);
            j
        })
        .collect();
    let bytes = batch(&jobs, &[]);

    // Uninterrupted reference run.
    let ref_dir = tmp_dir("kr-ref");
    let summary = run_daemon(&ref_dir, &bytes, SLICE, None, 8);
    assert_eq!(summary.completed, 24);

    // Interrupted run: cooperative halt after one round (all 24 sessions
    // mid-flight), resume, halt again, then run to completion — each
    // resume from a fresh daemon over the spooled work directory.
    let dir = tmp_dir("kr");
    let s1 = run_daemon(&dir, &bytes, SLICE, Some(1), 8);
    assert_eq!(s1.rounds, 1);
    assert_eq!(s1.halted_active, 24, "all sessions must be mid-flight");
    let s2 = resume_daemon(&dir, SLICE, Some(1), 4);
    assert_eq!(s2.rounds, 1);
    assert!(s2.halted_active > 0);

    // Torn write: a crash mid-append leaves bytes past the durable
    // checkpoint; re-open must truncate and re-produce them identically.
    {
        use std::io::Write;
        let victim = dir.join("tenants").join("kr-t00").join("kr-job-00");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(victim.join("trace.jsonl"))
            .unwrap();
        f.write_all(b"{\"Iteration\":{\"iterati").unwrap();
    }

    let s3 = resume_daemon(&dir, SLICE, None, 8);
    assert_eq!(s3.completed, 24);

    for j in &jobs {
        let a = session_bytes(&ref_dir, &j.tenant, &j.id);
        let b = session_bytes(&dir, &j.tenant, &j.id);
        assert_eq!(a, b, "kill/resume changed bytes of {}", j.id);
    }
    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Budget exhaustion.
// ---------------------------------------------------------------------------

#[test]
fn budget_exhaustion_halts_tenant_and_leaves_others_untouched() {
    ensure_pool();
    const SLICE: usize = 4;
    let bob_jobs: Vec<JobSpec> = (0..2u64)
        .map(|i| {
            let mut j = job(&format!("bob-job-{i}"), "bob", 100 + i);
            j.max_iterations = 40;
            j
        })
        .collect();
    let carol_jobs: Vec<JobSpec> = (0..2u64)
        .map(|i| job(&format!("carol-job-{i}"), "carol", 200 + i))
        .collect();
    let budget = BudgetSpec {
        tenant: "bob".into(),
        // One slice of one 20-arm session costs 80 evals; two sessions
        // blow through this on the first round barrier.
        max_evals: Some(100),
        max_ms: None,
    };

    let mut all = bob_jobs.clone();
    all.extend(carol_jobs.iter().cloned());
    let dir = tmp_dir("budget");
    let summary = run_daemon(&dir, &batch(&all, &[budget]), SLICE, None, 8);
    assert_eq!(summary.budget_exhausted, 2);
    assert_eq!(summary.completed, 2);

    for j in &bob_jobs {
        let session_dir = dir.join("tenants").join("bob").join(&j.id);
        let report: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(session_dir.join("report.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(
            report.field("status").as_str(),
            Some("BudgetExhausted"),
            "bob's sessions must report BudgetExhausted"
        );
        assert!(
            session_dir.join("session.json").exists(),
            "exhausted sessions keep their checkpoint"
        );
    }

    // Carol's bytes must match a run where bob never existed.
    let carol_only = tmp_dir("budget-carol");
    run_daemon(&carol_only, &batch(&carol_jobs, &[]), SLICE, None, 8);
    for j in &carol_jobs {
        let a = session_bytes(&dir, "carol", &j.id);
        let b = session_bytes(&carol_only, "carol", &j.id);
        assert_eq!(
            a, b,
            "bob's exhaustion leaked into carol's session {}",
            j.id
        );
    }
    std::fs::remove_dir_all(&carol_only).unwrap();

    // Re-arm (documented in docs/SERVICE.md): lift the budget from the
    // spool and delete the reports; the retained checkpoints resume and
    // the sessions run to completion.
    std::fs::write(dir.join("jobs.jsonl"), batch(&all, &[])).unwrap();
    for j in &bob_jobs {
        std::fs::remove_file(
            dir.join("tenants")
                .join("bob")
                .join(&j.id)
                .join("report.json"),
        )
        .unwrap();
    }
    let resumed = resume_daemon(&dir, SLICE, None, 8);
    // Summary status counts cover all four sessions (carol's two were
    // already done); only bob's two finished during this run.
    assert_eq!(resumed.completed, 4, "re-armed sessions must complete");
    assert_eq!(resumed.budget_exhausted, 0);
    assert_eq!(resumed.session_wall_ms.len(), 2);
    for j in &bob_jobs {
        let (_, report) = session_bytes(&dir, "bob", &j.id);
        let report: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&report).unwrap().trim()).unwrap();
        assert_eq!(report.field("status").as_str(), Some("Completed"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Protocol: precise rejections.
// ---------------------------------------------------------------------------

#[test]
fn protocol_rejections_carry_line_numbers() {
    let good = encode_line(&JobLine::Job(job("dup", "t", 1)));
    let doc = format!("{good}\n\n{good}\n");
    match parse_jobs(doc.as_bytes()) {
        Err(ProtocolError::DuplicateId { line, id }) => {
            assert_eq!(line, 3, "blank lines still count for numbering");
            assert_eq!(id, "dup");
        }
        other => panic!("expected DuplicateId, got {other:?}"),
    }

    match parse_jobs(b"{\"Job\":{\"id\":\"x\"") {
        Err(ProtocolError::Malformed { line: 1, .. }) => {}
        other => panic!("expected Malformed at line 1, got {other:?}"),
    }

    let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    match parse_jobs(deep.as_bytes()) {
        Err(ProtocolError::TooDeep { line: 1 }) => {}
        other => panic!("expected TooDeep, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Protocol: property tests.
// ---------------------------------------------------------------------------

fn arbitrary_job(a: u64, b: u64, c: u64) -> JobSpec {
    let algorithm = match a % 3 {
        0 => VariantChoice::Standard,
        1 => VariantChoice::Slate,
        _ => VariantChoice::Distributed,
    };
    JobSpec {
        id: format!("job-{a:x}"),
        tenant: format!("T-{:x}.{}", b % 4096, a % 10),
        scenario: ScenarioSpec::Synthetic {
            name: format!("scn_{}", c % 97),
            options: 2 + (a % 300) as usize,
            x_star: 1 + (b % (2 + a % 300)) as usize,
            statements: 1 + (c % 5000) as usize,
            tests: 1 + (a % 40) as usize,
            repair_rate: (b % 1000) as f64 / 1000.0,
            world_seed: c,
            pool_size: if c.is_multiple_of(2) {
                None
            } else {
                Some(1 + (c % 512) as usize)
            },
        },
        algorithm,
        seed: a ^ b,
        max_iterations: 1 + (c % 100_000) as usize,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Encoding any well-formed line and parsing it back yields the same
    // value — the JSONL protocol round-trips.
    #[test]
    fn job_lines_round_trip(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let line = if a % 5 == 0 {
            JobLine::Budget(BudgetSpec {
                tenant: format!("t{:x}", b % 65536),
                max_evals: if b % 3 == 0 { None } else { Some(b) },
                max_ms: if b % 3 == 1 { None } else { Some(c) },
            })
        } else {
            JobLine::Job(arbitrary_job(a, b, c))
        };
        let encoded = encode_line(&line);
        let decoded = parse_line(&encoded, 1);
        prop_assert_eq!(decoded.ok(), Some(line));
    }

    // Arbitrary byte noise never panics the parser — it returns a
    // precise error (or an empty batch for blank input).
    #[test]
    fn arbitrary_bytes_never_panic_parser(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_jobs(&bytes);
    }

    // Truncating a valid batch at any byte offset never panics; a cut
    // that lands mid-line is rejected with that line's number.
    #[test]
    fn truncated_batches_error_without_panicking(
        a in any::<u64>(), b in any::<u64>(), cut in any::<usize>(),
    ) {
        let full = batch(
            &[arbitrary_job(a, b, 1), arbitrary_job(a.wrapping_add(1), b, 2)],
            &[],
        );
        let cut = cut % (full.len() + 1);
        match parse_jobs(&full[..cut]) {
            Ok(parsed) => {
                // Only boundary cuts parse, and only to a prefix.
                prop_assert!(parsed.jobs.len() <= 2);
            }
            Err(
                ProtocolError::Malformed { line, .. } | ProtocolError::Invalid { line, .. },
            ) => prop_assert!((1..=2).contains(&line)),
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Trace rotation: size-capped segments, crash-safe, concat-identical.
// ---------------------------------------------------------------------------

/// Run a daemon with trace rotation at `cap` bytes per segment.
fn run_daemon_rotated(
    workdir: &Path,
    bytes: &[u8],
    slice: usize,
    halt_after_rounds: Option<u64>,
    threads: usize,
    cap: u64,
) -> DaemonSummary {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = slice;
    config.halt_after_rounds = halt_after_rounds;
    config.quiet = true;
    config.trace_segment_bytes = Some(cap);
    let mut daemon = Daemon::open(config).expect("open daemon");
    daemon.submit_bytes(bytes).expect("submit batch");
    rayon::with_max_threads(threads, || daemon.run()).expect("daemon run")
}

/// Resume a rotated daemon purely from its spool.
fn resume_daemon_rotated(
    workdir: &Path,
    slice: usize,
    halt_after_rounds: Option<u64>,
    threads: usize,
    cap: u64,
) -> DaemonSummary {
    let mut config = DaemonConfig::new(workdir);
    config.slice_iterations = slice;
    config.halt_after_rounds = halt_after_rounds;
    config.quiet = true;
    config.trace_segment_bytes = Some(cap);
    let mut daemon = Daemon::open(config).expect("reopen daemon");
    rayon::with_max_threads(threads, || daemon.run()).expect("daemon run")
}

/// The logical trace of a possibly-rotated session: `trace.jsonl`
/// followed by `trace.001.jsonl`, `trace.002.jsonl`, ... in order.
fn concat_trace(workdir: &Path, tenant: &str, id: &str) -> Vec<u8> {
    let dir = workdir.join("tenants").join(tenant).join(id);
    let mut out = std::fs::read(dir.join("trace.jsonl")).unwrap_or_default();
    for i in 1usize.. {
        match std::fs::read(dir.join(format!("trace.{i:03}.jsonl"))) {
            Ok(seg) => out.extend_from_slice(&seg),
            Err(_) => break,
        }
    }
    out
}

/// Number of trace segments a session has on disk.
fn segment_count(workdir: &Path, tenant: &str, id: &str) -> usize {
    let dir = workdir.join("tenants").join(tenant).join(id);
    let mut n = usize::from(dir.join("trace.jsonl").exists());
    for i in 1usize.. {
        if dir.join(format!("trace.{i:03}.jsonl")).exists() {
            n += 1;
        } else {
            break;
        }
    }
    n
}

#[test]
fn rotated_segments_concat_identical_across_thread_counts() {
    ensure_pool();
    const SLICE: usize = 3;
    let jobs: Vec<JobSpec> = (0..6u64)
        .map(|i| {
            let mut j = job(&format!("rot-job-{i}"), &format!("rot-t{}", i % 3), 70 + i);
            j.max_iterations = 10 + (i as usize % 5);
            j
        })
        .collect();
    let bytes = batch(&jobs, &[]);

    // Uncapped reference: single-file traces.
    let ref_dir = tmp_dir("rotd-ref");
    run_daemon(&ref_dir, &bytes, SLICE, None, 8);

    for threads in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("rotd-{threads}"));
        let summary = run_daemon_rotated(&dir, &bytes, SLICE, None, threads, 256);
        assert_eq!(summary.completed, jobs.len());
        let mut rotated_somewhere = false;
        for j in &jobs {
            let reference = session_bytes(&ref_dir, &j.tenant, &j.id);
            let got_trace = concat_trace(&dir, &j.tenant, &j.id);
            let got_report = std::fs::read(
                dir.join("tenants")
                    .join(&j.tenant)
                    .join(&j.id)
                    .join("report.json"),
            )
            .expect("report.json");
            assert_eq!(
                got_trace, reference.0,
                "rotated concat of {} differs from single-file trace at {threads} threads",
                j.id
            );
            assert_eq!(got_report, reference.1);
            rotated_somewhere |= segment_count(&dir, &j.tenant, &j.id) >= 2;
        }
        assert!(
            rotated_somewhere,
            "a 256-byte cap must actually rotate at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&ref_dir).unwrap();
}

#[test]
fn kill_resume_across_rotation_boundaries_is_byte_identical() {
    ensure_pool();
    const SLICE: usize = 3;
    const CAP: u64 = 200;
    let jobs: Vec<JobSpec> = (0..8u64)
        .map(|i| {
            let mut j = job(&format!("rk-job-{i}"), &format!("rk-t{}", i % 4), 80 + i);
            j.max_iterations = 12;
            j
        })
        .collect();
    let bytes = batch(&jobs, &[]);

    let ref_dir = tmp_dir("rotk-ref");
    run_daemon(&ref_dir, &bytes, SLICE, None, 8);

    // Halt after every round, resuming each time from a fresh daemon, so
    // kills land before, on, and after segment boundaries; the final
    // resume runs a different thread count and a different cap.
    let dir = tmp_dir("rotk");
    let mut summary = run_daemon_rotated(&dir, &bytes, SLICE, Some(1), 8, CAP);
    let mut lifetimes = 1;
    while summary.halted_active > 0 {
        // Torn tail on some mid-flight session's *last* segment.
        if lifetimes == 2 {
            use std::io::Write;
            let victim = dir.join("tenants").join("rk-t0").join("rk-job-0");
            let last = (0usize..)
                .take_while(|i| {
                    victim
                        .join(if *i == 0 {
                            "trace.jsonl".to_string()
                        } else {
                            format!("trace.{i:03}.jsonl")
                        })
                        .exists()
                })
                .last()
                .unwrap();
            let path = victim.join(if last == 0 {
                "trace.jsonl".to_string()
            } else {
                format!("trace.{last:03}.jsonl")
            });
            let mut f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
            f.write_all(b"{\"Iteration\":{\"tor").unwrap();
        }
        let (threads, cap) = if lifetimes % 2 == 0 {
            (4, CAP)
        } else {
            (1, 3 * CAP)
        };
        summary = resume_daemon_rotated(&dir, SLICE, Some(1), threads, cap);
        lifetimes += 1;
        assert!(lifetimes < 64, "runaway resume loop");
    }
    assert!(lifetimes >= 3, "want several kill/resume lifetimes");

    for j in &jobs {
        let reference = session_bytes(&ref_dir, &j.tenant, &j.id);
        assert_eq!(
            concat_trace(&dir, &j.tenant, &j.id),
            reference.0,
            "kill/resume across rotation boundaries changed bytes of {}",
            j.id
        );
    }
    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn profiling_on_vs_off_leaves_every_byte_identical() {
    ensure_pool();
    const SLICE: usize = 4;
    let jobs = [job("prof-a", "pt", 91), job("prof-b", "pt", 92)];
    let bytes = batch(&jobs, &[]);

    let off_dir = tmp_dir("prof-off");
    run_daemon(&off_dir, &bytes, SLICE, None, 8);

    mwu_core::prof::set_enabled(true);
    let on_dir = tmp_dir("prof-on");
    run_daemon(&on_dir, &bytes, SLICE, None, 8);
    mwu_core::prof::set_enabled(false);

    for j in &jobs {
        assert_eq!(
            session_bytes(&off_dir, &j.tenant, &j.id),
            session_bytes(&on_dir, &j.tenant, &j.id),
            "profiling changed artifact bytes of {}",
            j.id
        );
    }
    std::fs::remove_dir_all(&off_dir).unwrap();
    std::fs::remove_dir_all(&on_dir).unwrap();
}

// ---------------------------------------------------------------------------
// Group commit: eager mode is byte-identical, and crash points *inside* a
// commit epoch (staged-but-unsynced appends, staged-but-unpublished
// checkpoint replaces, lost renames) all resume byte-identically.
// ---------------------------------------------------------------------------

#[test]
fn eager_sync_matches_group_commit_and_zeroes_barrier_metrics() {
    ensure_pool();
    const SLICE: usize = 4;
    let jobs: Vec<JobSpec> = (0..10u64)
        .map(|i| {
            let mut j = job(&format!("gc-job-{i}"), &format!("gc-t{}", i % 4), 50 + i);
            j.max_iterations = 8 + (i as usize % 6);
            j
        })
        .collect();
    let bytes = batch(&jobs, &[]);

    // Default mode: group commit. The barrier must actually batch.
    let gc_dir = tmp_dir("mode-gc");
    let gc = run_daemon(&gc_dir, &bytes, SLICE, None, 8);
    assert_eq!(gc.completed, jobs.len());
    assert!(gc.io_syncs_batched > 0, "group commit must batch syncs");
    assert!(gc.sync_barrier.count > 0, "barrier latency must be sampled");
    assert!(!gc.sync_barrier.is_zero());

    // Eager mode: per-write fsyncs, and the batching metrics stay zero.
    let eager_dir = tmp_dir("mode-eager");
    let mut config = DaemonConfig::new(&eager_dir);
    config.slice_iterations = SLICE;
    config.quiet = true;
    config.group_commit = false;
    let mut daemon = Daemon::open(config).expect("open daemon");
    daemon.submit_bytes(&bytes).expect("submit batch");
    let eager = rayon::with_max_threads(8, || daemon.run()).expect("daemon run");
    assert_eq!(eager.completed, jobs.len());
    assert_eq!(eager.io_syncs_batched, 0, "eager mode must not batch");
    assert!(
        eager.sync_barrier.is_zero(),
        "eager mode must record no barrier samples: {:?}",
        eager.sync_barrier
    );

    for j in &jobs {
        assert_eq!(
            session_bytes(&gc_dir, &j.tenant, &j.id),
            session_bytes(&eager_dir, &j.tenant, &j.id),
            "group commit changed artifact bytes of {}",
            j.id
        );
    }
    std::fs::remove_dir_all(&gc_dir).unwrap();
    std::fs::remove_dir_all(&eager_dir).unwrap();
}

#[test]
fn kill_inside_commit_epoch_resumes_byte_identically() {
    ensure_pool();
    const SLICE: usize = 3;
    let jobs: Vec<JobSpec> = (0..6u64)
        .map(|i| {
            let mut j = job(&format!("ep-job-{i}"), &format!("ep-t{}", i % 3), 60 + i);
            j.max_iterations = 12;
            j
        })
        .collect();
    let bytes = batch(&jobs, &[]);

    let ref_dir = tmp_dir("epoch-ref");
    run_daemon(&ref_dir, &bytes, SLICE, None, 8);

    for threads in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("epoch-{threads}"));
        let s1 = run_daemon(&dir, &bytes, SLICE, Some(1), threads);
        assert_eq!(s1.halted_active, jobs.len(), "all mid-flight after round 1");
        let victim = dir.join("tenants").join("ep-t0").join("ep-job-0");
        let round1_meta = std::fs::read(victim.join("session.json")).expect("checkpoint");

        // Crash point A — between a staged append and its barrier: the
        // trace carries complete extra lines past the vouched trace_len.
        // Recovery must truncate to the vouch and replay them.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(victim.join("trace.jsonl"))
                .unwrap();
            f.write_all(b"{\"Iteration\":{\"iteration\":999,\"staged\":true}}\n")
                .unwrap();
        }
        let s2 = resume_daemon(&dir, SLICE, Some(1), threads);
        assert!(s2.halted_active > 0, "victim still mid-flight");

        // Crash point B — between the barrier and the checkpoint
        // publish: a staged session.json.tmp that never got renamed.
        std::fs::write(victim.join("session.json.tmp"), b"{\"staged\":").unwrap();
        // Crash point C — lost rename: the barrier made round 2's trace
        // bytes durable but the crash ate the session.json rename, so
        // the on-disk checkpoint still vouches for round 1.
        std::fs::write(victim.join("session.json"), &round1_meta).unwrap();

        let s3 = resume_daemon(&dir, SLICE, None, threads);
        assert_eq!(s3.completed, jobs.len());
        for j in &jobs {
            assert_eq!(
                session_bytes(&dir, &j.tenant, &j.id),
                session_bytes(&ref_dir, &j.tenant, &j.id),
                "mid-epoch crash changed bytes of {} at {threads} threads",
                j.id
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&ref_dir).unwrap();
}

static ROTATION_PROP_REFERENCE: std::sync::OnceLock<(Vec<u8>, Vec<u8>)> =
    std::sync::OnceLock::new();

/// Uncapped single-session reference bytes for the rotation property.
fn rotation_reference() -> &'static (Vec<u8>, Vec<u8>) {
    ROTATION_PROP_REFERENCE.get_or_init(|| {
        ensure_pool();
        let dir = tmp_dir("rotp-ref");
        run_daemon(&dir, &batch(&[job("rp", "rpt", 77)], &[]), 3, None, 1);
        let bytes = session_bytes(&dir, "rpt", "rp");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Any positive segment cap yields segments whose in-order
    // concatenation is byte-identical to the uninterrupted single-file
    // trace (caps smaller than one slice's bytes degenerate to
    // one-slice-per-segment; huge caps degenerate to no rotation).
    #[test]
    fn any_segment_cap_concats_to_uninterrupted_trace(cap in 1u64..4096) {
        ensure_pool();
        let (ref_trace, ref_report) = rotation_reference();
        let dir = tmp_dir(&format!("rotp-{cap}"));
        let summary =
            run_daemon_rotated(&dir, &batch(&[job("rp", "rpt", 77)], &[]), 3, None, 4, cap);
        prop_assert_eq!(summary.completed, 1);
        let trace = concat_trace(&dir, "rpt", "rp");
        let report = std::fs::read(
            dir.join("tenants").join("rpt").join("rp").join("report.json"),
        )
        .expect("report.json");
        prop_assert_eq!(&trace, ref_trace, "cap {} broke concat identity", cap);
        prop_assert_eq!(&report, ref_report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
