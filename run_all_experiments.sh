#!/bin/bash
# Regenerate every paper artifact into results/ (grid tables are produced by
# tables234, run separately due to runtime).
set -e
cd "$(dirname "$0")"
BIN=./target/release
mkdir -p results
$BIN/table1             > results/table1_output.txt           2>/dev/null
$BIN/fig4a              > results/fig4a_output.txt            2>/dev/null
$BIN/fig4b              > results/fig4b_output.txt            2>/dev/null
$BIN/cost_model         > results/cost_model_output.txt       2>/dev/null
$BIN/congestion         > results/congestion_output.txt       2>/dev/null
$BIN/sync_stall         > results/sync_stall_output.txt       2>/dev/null
$BIN/repair_comparison --replicates 10 > results/repair_comparison_output.txt 2>/dev/null
$BIN/amortization       > results/amortization_output.txt     2>/dev/null
$BIN/sweep_params --replicates 10 > results/sweep_params_output.txt 2>/dev/null
$BIN/bandit_baselines --replicates 10 > results/bandit_baselines_output.txt 2>/dev/null
$BIN/regret_curves      > results/regret_curves_output.txt    2>/dev/null
$BIN/export_datasets    > results/export_datasets_output.txt  2>/dev/null
$BIN/eval_cost          > results/eval_cost_output.txt         2>/dev/null
# The Tables II-IV grid is the long pole (~30-50 min single-core at 25
# replicates); run it explicitly:
#   ./target/release/tables234 --replicates 25 > results/tables234_output.txt
echo ALL_EXPERIMENTS_DONE
